// Unit tests for links and the ring fabric: serialization time, FIFO wire
// arbitration, duplex independence, topology helpers.
#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/link.h"
#include "sim/engine.h"
#include "sim/when_all.h"

namespace cj::net {
namespace {

using sim::Engine;
using sim::Task;

LinkSpec test_spec() {
  LinkSpec spec;
  spec.bandwidth_bytes_per_sec = 1e9;  // 1 GB/s for round numbers
  spec.propagation_delay = 10 * kMicrosecond;
  return spec;
}

TEST(Link, SerializationTimeMatchesBandwidth) {
  Engine e;
  Link link(e, test_spec(), "t");
  EXPECT_EQ(link.serialization_time(1'000'000), kMillisecond);
  EXPECT_EQ(link.serialization_time(0), 0);
}

TEST(Link, TransferTakesWirePlusPropagation) {
  Engine e;
  Link link(e, test_spec(), "t");
  e.spawn(link.transfer(1'000'000), "xfer");
  e.run();
  e.check_all_complete();
  EXPECT_EQ(e.now(), kMillisecond + 10 * kMicrosecond);
  EXPECT_EQ(link.bytes_transferred(), 1'000'000u);
  EXPECT_EQ(link.messages(), 1u);
}

TEST(Link, ConcurrentTransfersSerializeOnTheWire) {
  Engine e;
  Link link(e, test_spec(), "t");
  std::vector<Task<void>> xfers;
  for (int i = 0; i < 3; ++i) xfers.push_back(link.transfer(1'000'000));
  e.spawn(sim::when_all(e, std::move(xfers)), "batch");
  e.run();
  // Wire times serialize (3 ms); only the last propagation adds latency.
  EXPECT_EQ(e.now(), 3 * kMillisecond + 10 * kMicrosecond);
  EXPECT_EQ(link.busy_time(), 3 * kMillisecond);
}

TEST(Link, ExtraWireTimeModelsPerMessageOverhead) {
  Engine e;
  Link link(e, test_spec(), "t");
  e.spawn(link.transfer(0, 5 * kMicrosecond), "hdr");
  e.run();
  EXPECT_EQ(e.now(), 5 * kMicrosecond + 10 * kMicrosecond);
}

TEST(DuplexLink, DirectionsAreIndependent) {
  Engine e;
  DuplexLink duplex(e, test_spec(), "d");
  std::vector<Task<void>> xfers;
  xfers.push_back(duplex.forward.transfer(1'000'000));
  xfers.push_back(duplex.backward.transfer(1'000'000));
  e.spawn(sim::when_all(e, std::move(xfers)), "both");
  e.run();
  // Full duplex: both finish in one wire time, not two.
  EXPECT_EQ(e.now(), kMillisecond + 10 * kMicrosecond);
}

TEST(RingFabric, SuccessorPredecessorWrapAround) {
  Engine e;
  RingFabric fabric(e, 4, test_spec());
  EXPECT_EQ(fabric.successor(0), 1);
  EXPECT_EQ(fabric.successor(3), 0);
  EXPECT_EQ(fabric.predecessor(0), 3);
  EXPECT_EQ(fabric.predecessor(2), 1);
}

TEST(RingFabric, DataAndControlLinksAreOpposite) {
  Engine e;
  RingFabric fabric(e, 3, test_spec());
  // Host 1's control link carries credits back toward host 0; it is the
  // backward direction of host 0's data link cable.
  e.spawn(fabric.data_link(0).transfer(100), "d");
  e.spawn(fabric.control_link(1).transfer(8), "c");
  e.run();
  EXPECT_EQ(fabric.data_link(0).bytes_transferred(), 100u);
  EXPECT_EQ(fabric.control_link(1).bytes_transferred(), 8u);
  EXPECT_EQ(fabric.total_data_bytes(), 100u);  // control bytes not counted
}

TEST(RingFabric, SingleHostRingIsValid) {
  Engine e;
  RingFabric fabric(e, 1, test_spec());
  EXPECT_EQ(fabric.successor(0), 0);
  EXPECT_EQ(fabric.predecessor(0), 0);
}

}  // namespace
}  // namespace cj::net
