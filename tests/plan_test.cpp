// Multi-round query planner tests: DP plan enumeration over constructed
// statistics, exact-result parity of executed N-way plans against a
// nested-loops reference (uniform + Zipf, both backends), distributed-
// intermediate locality (no step gathers an intermediate into one
// process), and composition with PR 6 crash recovery mid-plan.
#include "plan/plan_exec.h"
#include "plan/plan_gen.h"
#include "plan/query_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "join/nested_loops.h"
#include "rel/generator.h"
#include "ring/redistribute.h"

namespace cj::plan {
namespace {

using cyclo::Backend;
using cyclo::ClusterConfig;

ClusterConfig small_cluster(int hosts, Backend backend = Backend::kSim) {
  ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_hosts = hosts;
  cfg.cores_per_host = 4;
  cfg.node.buffer_bytes = 64 * 1024;
  cfg.node.num_buffers = 4;
  return cfg;
}

model::PlanCostParams cost_params(const ClusterConfig& cluster) {
  model::PlanCostParams params;
  params.num_hosts = cluster.num_hosts;
  return params;
}

// ---------------------------------------------------------------- oracle

struct Reference {
  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;
};

/// Single-process left-deep evaluation of the plan over the whole base
/// relations: same per-round predicates, same rotation orientation (the
/// pairing checksum is orientation-sensitive), same left-deep payload
/// projection — but via nested loops over undivided inputs.
Reference reference_plan(const Plan& plan, const QueryGraph& graph,
                         const std::vector<const rel::Relation*>& bases) {
  std::vector<rel::Tuple> inter(
      bases[static_cast<std::size_t>(plan.order[0])]->tuples().begin(),
      bases[static_cast<std::size_t>(plan.order[0])]->tuples().end());
  Reference ref;
  for (std::size_t k = 0; k < plan.rounds.size(); ++k) {
    const PlannedRound& round = plan.rounds[k];
    const auto joined =
        bases[static_cast<std::size_t>(round.relation)]->tuples();
    join::JoinResult res(true);
    if (round.intermediate_rotates) {
      join::nested_loops_band_join(inter, joined, round.band, res);
    } else {
      join::nested_loops_band_join(joined, inter, round.band, res);
    }
    ref.matches = res.matches();
    ref.checksum = res.checksum();
    std::vector<rel::Tuple> next;
    next.reserve(res.output().size());
    for (const join::OutTuple& t : res.output()) {
      next.push_back(rel::Tuple{
          t.key, round.intermediate_rotates ? t.r_payload : t.s_payload});
    }
    inter = std::move(next);
  }
  return ref;
}

// A chain workload lineitems — orders — shipments sharing one key domain.
struct ChainWorkload {
  QueryGraph graph;
  rel::Relation lineitems, orders, shipments;
  std::vector<const rel::Relation*> bases;

  explicit ChainWorkload(double zipf = 0.0) {
    // Skewed runs keep the volume down: heavy hitters square through two
    // rounds, and the nested-loops oracle is quadratic in the blowup.
    const std::uint64_t scale = zipf > 0.0 ? 3 : 1;
    lineitems = rel::generate(
        {.rows = 6'000 / scale, .key_domain = 3'000 / scale, .zipf_z = zipf,
         .seed = 11},
        "lineitems", 1);
    orders = rel::generate(
        {.rows = 3'000 / scale, .key_domain = 3'000 / scale, .zipf_z = zipf,
         .seed = 12},
        "orders", 2);
    shipments = rel::generate(
        {.rows = 2'000 / scale, .key_domain = 3'000 / scale, .zipf_z = zipf,
         .seed = 13},
        "shipments", 3);
    const int l = graph.add_relation("lineitems", rel::collect_stats(lineitems));
    const int o = graph.add_relation("orders", rel::collect_stats(orders));
    const int s = graph.add_relation("shipments", rel::collect_stats(shipments));
    graph.add_join(l, o);
    graph.add_join(o, s);
    bases = {&lineitems, &orders, &shipments};
  }

  std::vector<rel::PartitionedRelation> split(int hosts) const {
    std::vector<rel::PartitionedRelation> inputs;
    for (const rel::Relation* base : bases) {
      inputs.push_back(rel::PartitionedRelation::split(*base, hosts));
    }
    return inputs;
  }
};

/// Locality invariant of the acceptance criteria: every materialized
/// round's output stays a per-host partition — no host ever holds the
/// whole intermediate (given it has more than a handful of rows).
void expect_fragment_locality(const PlanRunReport& report) {
  for (std::size_t k = 0; k < report.rounds.size(); ++k) {
    const RoundReport& round = report.rounds[k];
    if (round.rows_per_host.empty()) continue;  // count-only final round
    const std::uint64_t total = std::accumulate(
        round.rows_per_host.begin(), round.rows_per_host.end(),
        static_cast<std::uint64_t>(0));
    if (total < 100) continue;
    const std::uint64_t max_host =
        *std::max_element(round.rows_per_host.begin(), round.rows_per_host.end());
    const int populated = static_cast<int>(
        std::count_if(round.rows_per_host.begin(), round.rows_per_host.end(),
                      [](std::uint64_t r) { return r > 0; }));
    EXPECT_LT(max_host, total) << "round " << k
                               << ": one host holds the whole intermediate";
    EXPECT_GE(populated, 2) << "round " << k;
  }
}

// ----------------------------------------------------- plan enumeration

TEST(PlanGen, DpPicksTheCheapestOrderOnConstructedStats) {
  // Star: a big fact table and three dimensions of very different
  // selectivity. The cheapest left-deep order shrinks the intermediate
  // first (tiny dim before the huge one).
  QueryGraph graph;
  const int fact = graph.add_relation("fact", model::PlanRelStats{2e6, 2e6});
  const int tiny = graph.add_relation("tiny", model::PlanRelStats{1e2, 1e2});
  const int mid = graph.add_relation("mid", model::PlanRelStats{1e4, 1e4});
  const int big = graph.add_relation("big", model::PlanRelStats{1e6, 1e6});
  graph.add_join(fact, tiny);
  graph.add_join(fact, mid);
  graph.add_join(fact, big);

  PlanGen gen(graph, cost_params(small_cluster(5)));
  const Plan best = gen.best();
  const std::vector<Plan> all = gen.enumerate();

  ASSERT_FALSE(all.empty());
  // The DP's minimum must be the exhaustive minimum.
  EXPECT_DOUBLE_EQ(best.total_ns, all.front().total_ns);
  EXPECT_EQ(best.order, all.front().order);
  // And it must genuinely separate the space: the worst order is costlier.
  EXPECT_GT(all.back().total_ns, best.total_ns);
  // Dimensions join cheapest-first: tiny strictly before big.
  const auto pos = [&](int id) {
    return std::find(best.order.begin(), best.order.end(), id) -
           best.order.begin();
  };
  EXPECT_LT(pos(tiny), pos(big));
}

TEST(PlanGen, DpMatchesExhaustiveMinimumOnRandomGraphs) {
  std::uint64_t state = 42;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % 1000 + 1;
  };
  for (int trial = 0; trial < 20; ++trial) {
    QueryGraph graph;
    const int n = 3 + static_cast<int>(next() % 3);  // 3..5 relations
    for (int i = 0; i < n; ++i) {
      const double rows = static_cast<double>(next()) * 1000.0;
      graph.add_relation("r" + std::to_string(i), model::PlanRelStats{rows, std::max(1.0, rows / (1 + next() % 10))});
    }
    // Random spanning tree keeps the graph connected.
    for (int i = 1; i < n; ++i) {
      graph.add_join(i, static_cast<int>(next() % static_cast<std::uint64_t>(i)));
    }
    PlanGen gen(graph, cost_params(small_cluster(4)));
    const Plan best = gen.best();
    const std::vector<Plan> all = gen.enumerate();
    ASSERT_FALSE(all.empty());
    EXPECT_NEAR(best.total_ns, all.front().total_ns,
                1e-6 * all.front().total_ns)
        << "trial " << trial;
  }
}

TEST(PlanGen, DisconnectedGraphIsRejected) {
  QueryGraph graph;
  graph.add_relation("a", model::PlanRelStats{100, 100});
  graph.add_relation("b", model::PlanRelStats{100, 100});
  graph.add_relation("c", model::PlanRelStats{100, 100});
  graph.add_join(0, 1);  // c is unreachable
  PlanGen gen(graph, cost_params(small_cluster(3)));
  EXPECT_DEATH((void)gen.best(), "disconnected");
}

TEST(PlanGen, BandEdgeCompilesToSortMergeRound) {
  QueryGraph graph;
  const int a = graph.add_relation("a", model::PlanRelStats{1e4, 1e4});
  const int b = graph.add_relation("b", model::PlanRelStats{1e4, 1e4});
  graph.add_join(a, b, /*band=*/3);
  PlanGen gen(graph, cost_params(small_cluster(4)));
  const Plan plan = gen.best();
  ASSERT_EQ(plan.rounds.size(), 1u);
  EXPECT_EQ(plan.rounds[0].kind, model::JoinKind::kSortMerge);
  EXPECT_EQ(plan.rounds[0].band, 3u);
}

TEST(PlanCost, RotationPrefersTheSmallerSideWhenCostsAreSymmetric) {
  model::PlanCostParams params;
  params.num_hosts = 6;
  const model::PlanRelStats small{1e4, 1e4};
  const model::PlanRelStats large{1e6, 1e6};
  bool small_rotates = false;
  (void)model::pick_rotation(small, large, model::JoinKind::kHash,
                             /*out_rows=*/1e4, /*redistribute_output=*/false,
                             params, &small_rotates);
  // Rotating the small side moves fewer bytes and probes fewer tuples.
  EXPECT_TRUE(small_rotates);
}

// ------------------------------------------------------- plan execution

TEST(PlanExec, ThreeWayChainMatchesReferenceAndStaysDistributed) {
  const ChainWorkload load;
  const int hosts = 4;
  PlanGen gen(load.graph, cost_params(small_cluster(hosts)));
  const Plan plan = gen.best();
  const Reference ref = reference_plan(plan, load.graph, load.bases);
  ASSERT_GT(ref.matches, 0u);

  ExecConfig cfg;
  cfg.cluster = small_cluster(hosts);
  PlanExecutor exec(cfg);
  const PlanRunReport report =
      exec.execute(plan, load.graph, load.split(hosts));

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_GT(report.rounds[0].rotation_bytes, 0u);
  EXPECT_GT(report.rounds[0].redistribute_bytes, 0u);
  EXPECT_EQ(report.rounds[1].redistribute_bytes, 0u);  // final round
  EXPECT_EQ(report.wire_bytes,
            report.rounds[0].rotation_bytes +
                report.rounds[0].redistribute_bytes +
                report.rounds[1].rotation_bytes);
  expect_fragment_locality(report);
  // The final output is itself a distributed partition of matching size.
  EXPECT_EQ(report.output.rows(), ref.matches);
  EXPECT_EQ(report.output.hosts(), hosts);
}

TEST(PlanExec, ZipfChainMatchesReference) {
  const ChainWorkload load(/*zipf=*/0.8);
  const int hosts = 4;
  PlanGen gen(load.graph, cost_params(small_cluster(hosts)));
  const Plan plan = gen.best();
  const Reference ref = reference_plan(plan, load.graph, load.bases);
  ASSERT_GT(ref.matches, 0u);

  ExecConfig cfg;
  cfg.cluster = small_cluster(hosts);
  PlanExecutor exec(cfg);
  const PlanRunReport report =
      exec.execute(plan, load.graph, load.split(hosts));

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  expect_fragment_locality(report);
}

TEST(PlanExec, FourWayStarMatchesReferenceForEveryEnumeratedOrder) {
  // fact ⋈ d1 ⋈ d2 ⋈ d3 on one shared key domain. Every connected
  // left-deep order must produce the identical final result — the
  // planner's choice only moves cost, never answers.
  rel::Relation fact = rel::generate(
      {.rows = 5'000, .key_domain = 1'500, .seed = 21}, "fact", 1);
  rel::Relation d1 = rel::generate(
      {.rows = 900, .key_domain = 1'500, .seed = 22}, "d1", 2);
  rel::Relation d2 = rel::generate(
      {.rows = 700, .key_domain = 1'500, .seed = 23}, "d2", 3);
  rel::Relation d3 = rel::generate(
      {.rows = 500, .key_domain = 1'500, .seed = 24}, "d3", 4);
  QueryGraph graph;
  const int f = graph.add_relation("fact", rel::collect_stats(fact));
  const int a = graph.add_relation("d1", rel::collect_stats(d1));
  const int b = graph.add_relation("d2", rel::collect_stats(d2));
  const int c = graph.add_relation("d3", rel::collect_stats(d3));
  graph.add_join(f, a);
  graph.add_join(f, b);
  graph.add_join(f, c);
  const std::vector<const rel::Relation*> bases = {&fact, &d1, &d2, &d3};

  const int hosts = 3;
  PlanGen gen(graph, cost_params(small_cluster(hosts)));
  const std::vector<Plan> all = gen.enumerate();
  ASSERT_GE(all.size(), 2u);

  std::uint64_t first_matches = 0;
  for (const Plan* plan : {&all.front(), &all.back()}) {
    const Reference ref = reference_plan(*plan, graph, bases);
    std::vector<rel::PartitionedRelation> inputs;
    for (const rel::Relation* base : bases) {
      inputs.push_back(rel::PartitionedRelation::split(*base, hosts));
    }
    ExecConfig cfg;
    cfg.cluster = small_cluster(hosts);
    PlanExecutor exec(cfg);
    const PlanRunReport report = exec.execute(*plan, graph, std::move(inputs));
    EXPECT_EQ(report.matches, ref.matches);
    EXPECT_EQ(report.checksum, ref.checksum);
    expect_fragment_locality(report);
    if (first_matches == 0) first_matches = report.matches;
    EXPECT_EQ(report.matches, first_matches)
        << "different orders disagree on the result";
  }
}

TEST(PlanExec, BandRoundRunsSortMergeAndMatchesReference) {
  rel::Relation events = rel::generate(
      {.rows = 3'000, .key_domain = 2'000, .seed = 31}, "events", 1);
  rel::Relation probes = rel::generate(
      {.rows = 2'000, .key_domain = 2'000, .seed = 32}, "probes", 2);
  rel::Relation labels = rel::generate(
      {.rows = 1'000, .key_domain = 2'000, .seed = 33}, "labels", 3);
  QueryGraph graph;
  const int e = graph.add_relation("events", rel::collect_stats(events));
  const int p = graph.add_relation("probes", rel::collect_stats(probes));
  const int l = graph.add_relation("labels", rel::collect_stats(labels));
  graph.add_join(e, p, /*band=*/2);
  graph.add_join(p, l);
  const std::vector<const rel::Relation*> bases = {&events, &probes, &labels};

  const int hosts = 3;
  PlanGen gen(graph, cost_params(small_cluster(hosts)));
  const Plan plan = gen.best();
  const Reference ref = reference_plan(plan, graph, bases);
  ASSERT_GT(ref.matches, 0u);

  std::vector<rel::PartitionedRelation> inputs;
  for (const rel::Relation* base : bases) {
    inputs.push_back(rel::PartitionedRelation::split(*base, hosts));
  }
  ExecConfig cfg;
  cfg.cluster = small_cluster(hosts);
  PlanExecutor exec(cfg);
  const PlanRunReport report = exec.execute(plan, graph, std::move(inputs));
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

TEST(PlanExec, RtBackendMatchesSimOnTheChain) {
  const ChainWorkload load;
  const int hosts = 3;
  PlanGen gen(load.graph, cost_params(small_cluster(hosts)));
  const Plan plan = gen.best();
  const Reference ref = reference_plan(plan, load.graph, load.bases);

  ExecConfig cfg;
  cfg.cluster = small_cluster(hosts, Backend::kRt);
  PlanExecutor exec(cfg);
  const PlanRunReport report =
      exec.execute(plan, load.graph, load.split(hosts));

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  expect_fragment_locality(report);
}

TEST(PlanExec, MidPlanCrashRecoveryComposesWithMultiRound) {
  // Four relations, three rounds; the crash lands in round 1 — a MIDDLE,
  // materializing round whose distributed output must survive the crash
  // via PR 6's ring-neighbor replication and feed round 2 exactly like a
  // clean round's would.
  rel::Relation a = rel::generate(
      {.rows = 5'000, .key_domain = 2'500, .seed = 41}, "a", 1);
  rel::Relation b = rel::generate(
      {.rows = 2'500, .key_domain = 2'500, .seed = 42}, "b", 2);
  rel::Relation c = rel::generate(
      {.rows = 1'500, .key_domain = 2'500, .seed = 43}, "c", 3);
  rel::Relation d = rel::generate(
      {.rows = 1'000, .key_domain = 2'500, .seed = 44}, "d", 4);
  QueryGraph graph;
  const int ra = graph.add_relation("a", rel::collect_stats(a));
  const int rb = graph.add_relation("b", rel::collect_stats(b));
  const int rc = graph.add_relation("c", rel::collect_stats(c));
  const int rd = graph.add_relation("d", rel::collect_stats(d));
  graph.add_join(ra, rb);
  graph.add_join(rb, rc);
  graph.add_join(rc, rd);
  const std::vector<const rel::Relation*> bases = {&a, &b, &c, &d};

  const int hosts = 4;
  PlanGen gen(graph, cost_params(small_cluster(hosts)));
  const Plan plan = gen.best();
  const Reference ref = reference_plan(plan, graph, bases);
  ASSERT_GT(ref.matches, 0u);

  std::vector<rel::PartitionedRelation> inputs;
  for (const rel::Relation* base : bases) {
    inputs.push_back(rel::PartitionedRelation::split(*base, hosts));
  }
  ExecConfig cfg;
  cfg.cluster = small_cluster(hosts);
  cfg.round_config = [&](int round, ClusterConfig* cluster) {
    if (round != 1) return;
    cluster->fault.crashes.push_back({.host = 2, .at = 0});
    cluster->node.resilience.ack_timeout = 20 * kMillisecond;
    cluster->node.resilience.replicate = true;
  };
  PlanExecutor exec(cfg);
  const PlanRunReport report = exec.execute(plan, graph, std::move(inputs));

  ASSERT_EQ(report.rounds.size(), 3u);
  EXPECT_FALSE(report.rounds[0].recovered);  // rounds 0 and 2 ran fault-free
  EXPECT_TRUE(report.rounds[1].recovered);
  EXPECT_FALSE(report.rounds[1].degraded);
  EXPECT_FALSE(report.rounds[2].recovered);
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_EQ(report.output.rows(), ref.matches);
  expect_fragment_locality(report);
}

TEST(PlanExec, CountOnlyFinalRoundSkipsMaterialization) {
  const ChainWorkload load;
  const int hosts = 3;
  PlanGen gen(load.graph, cost_params(small_cluster(hosts)));
  const Plan plan = gen.best();
  const Reference ref = reference_plan(plan, load.graph, load.bases);

  ExecConfig cfg;
  cfg.cluster = small_cluster(hosts);
  cfg.materialize_final = false;
  PlanExecutor exec(cfg);
  const PlanRunReport report =
      exec.execute(plan, load.graph, load.split(hosts));

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_TRUE(report.rounds.back().rows_per_host.empty());
  EXPECT_EQ(report.output.hosts(), 0);
}

}  // namespace
}  // namespace cj::plan
