// Tests for the kernel-level profiling subsystem (src/obs/prof):
// attribution context semantics, region accumulation, the profile JSON
// contract ("counters":"hw"|"fallback"), the Perfetto counter-track flush,
// and the end-to-end path through a profiled cyclo-join run.
//
// Hardware counters may or may not open in the test environment; every
// assertion here holds in both modes (cpu_ns is always live, and the
// hardware fields are only inspected behind a hardware() check).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cyclo/cyclo_join.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "rel/generator.h"

namespace cj::obs::prof {
namespace {

// Spends enough real CPU that thread-CPU-time clocks must advance.
void burn_cpu() {
  volatile std::uint64_t acc = 0;
  for (int i = 0; i < 200'000; ++i) acc += static_cast<std::uint64_t>(i) * i;
}

// ----- attribution context -------------------------------------------------

TEST(ScopedContextTest, NullUnlessInstalledAndRestoresOnExit) {
  EXPECT_EQ(current(), nullptr);
  KernelProfiler outer_prof, inner_prof;
  {
    ScopedContext outer(&outer_prof, 1, "core");
    EXPECT_EQ(current(), &outer_prof);
    EXPECT_EQ(current_host(), 1);
    EXPECT_EQ(current_entity(), "core");
    {
      ScopedContext inner(&inner_prof, 2, "kernel/legacy");
      EXPECT_EQ(current(), &inner_prof);
      EXPECT_EQ(current_host(), 2);
      EXPECT_EQ(current_entity(), "kernel/legacy");
    }
    EXPECT_EQ(current(), &outer_prof);
    EXPECT_EQ(current_host(), 1);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(ScopedContextTest, NullProfilerLeavesContextUntouched) {
  KernelProfiler prof;
  ScopedContext outer(&prof, 3, "core");
  {
    // The unconditional guard instrumentation sites install: a null
    // profiler must not shadow a live context.
    ScopedContext noop(nullptr, 9, "ignored");
    EXPECT_EQ(current(), &prof);
    EXPECT_EQ(current_host(), 3);
  }
  EXPECT_EQ(current(), &prof);
}

TEST(ScopedContextTest, ContextIsThreadLocal) {
  KernelProfiler prof;
  ScopedContext ctx(&prof, 0, "core");
  KernelProfiler* seen = &prof;
  std::thread([&] { seen = current(); }).join();
  EXPECT_EQ(seen, nullptr);  // other threads see no context
  EXPECT_EQ(current(), &prof);
}

// ----- regions and accumulation --------------------------------------------

TEST(ScopedProfileTest, RecordsUnderContextAndAccumulates) {
  KernelProfiler prof;
  {
    ScopedContext ctx(&prof, 2, "core");
    for (int i = 0; i < 3; ++i) {
      ScopedProfile region(current(), "hash_build", 1'000);
      burn_cpu();
    }
    {
      ScopedProfile region(current(), "probe", 500);
      burn_cpu();
    }
  }

  const KernelProfile profile = prof.snapshot();
  ASSERT_EQ(profile.rows.size(), 2u);  // sorted by (host, entity, phase)
  const KernelProfile::Row& build = profile.rows[0];
  EXPECT_EQ(build.host, 2);
  EXPECT_EQ(build.entity, "core");
  EXPECT_EQ(build.phase, "hash_build");
  EXPECT_EQ(build.totals.invocations, 3u);
  EXPECT_EQ(build.totals.tuples, 3'000u);
  EXPECT_GT(build.totals.cpu_ns, 0);
  const KernelProfile::Row& probe = profile.rows[1];
  EXPECT_EQ(probe.phase, "probe");
  EXPECT_EQ(probe.totals.invocations, 1u);
  EXPECT_EQ(probe.totals.tuples, 500u);

  if (prof.hardware()) {
    EXPECT_GT(build.totals.cycles, 0u);
    EXPECT_GT(build.totals.instructions, 0u);
  } else {
    EXPECT_EQ(build.totals.cycles, 0u);
  }
}

TEST(ScopedProfileTest, NoOpWithoutProfilerOrContext) {
  // The exact expression every instrumentation site evaluates when
  // profiling is off: current() is null and the region must cost nothing
  // and record nowhere.
  ScopedProfile region(current(), "hash_build", 123);
  burn_cpu();
  // Nothing to assert into — the absence of a crash plus the context
  // staying null is the contract.
  EXPECT_EQ(current(), nullptr);
}

TEST(ScopedProfileTest, NestedRegionsAttributeToBothPhases) {
  KernelProfiler prof;
  {
    ScopedContext ctx(&prof, 0, "core");
    ScopedProfile outer(current(), "merge", 10);
    burn_cpu();
    {
      ScopedProfile inner(current(), "sort", 10);
      burn_cpu();
    }
  }
  const KernelProfile profile = prof.snapshot();
  ASSERT_EQ(profile.rows.size(), 2u);
  const auto& merge = profile.rows[0];  // "merge" < "sort"
  const auto& sort = profile.rows[1];
  EXPECT_EQ(merge.phase, "merge");
  EXPECT_EQ(sort.phase, "sort");
  // The nested sort interval is part of the enclosing merge delta.
  EXPECT_GE(merge.totals.cpu_ns, sort.totals.cpu_ns);
}

// ----- JSON contract -------------------------------------------------------

TEST(KernelProfileTest, JsonDeclaresCounterModeAndDerivedRates) {
  KernelProfiler prof;
  {
    ScopedContext ctx(&prof, 0, "probe_cached/optimized");
    ScopedProfile region(current(), "probe", 4'096);
    burn_cpu();
  }
  const KernelProfile profile = prof.snapshot();
  const std::string json = profile.to_json();
  if (profile.hardware) {
    EXPECT_NE(json.find("\"counters\":\"hw\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
    EXPECT_NE(json.find("\"llc_misses\":"), std::string::npos);
  } else {
    EXPECT_NE(json.find("\"counters\":\"fallback\""), std::string::npos);
    // Hardware fields are omitted, not zero-filled, in fallback mode.
    EXPECT_EQ(json.find("\"cycles\":"), std::string::npos);
    EXPECT_EQ(json.find("\"llc_misses\":"), std::string::npos);
  }
  EXPECT_NE(json.find("\"phase\":\"probe\""), std::string::npos);
  EXPECT_NE(json.find("\"entity\":\"probe_cached/optimized\""), std::string::npos);
  EXPECT_NE(json.find("\"tuples\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_ns\":"), std::string::npos);
}

TEST(KernelProfileTest, EmptyProfile) {
  KernelProfiler prof;
  const KernelProfile profile = prof.snapshot();
  EXPECT_TRUE(profile.empty());
  EXPECT_NE(profile.to_json().find("\"phases\":[]"), std::string::npos);
}

// ----- tracer flush --------------------------------------------------------

TEST(KernelProfilerTest, FlushEmitsCounterTracksOnlyForChangedPhases) {
  KernelProfiler prof;
  Tracer tracer;
  {
    ScopedContext ctx(&prof, 1, "core");
    ScopedProfile region(current(), "radix_pass1", 100);
    burn_cpu();
  }
  prof.flush_to_tracer(tracer, 5'000);
  const std::size_t after_first = tracer.events().size();
  ASSERT_GT(after_first, 0u);
  const char* track =
      prof.hardware() ? "prof.radix_pass1.cycles" : "prof.radix_pass1.cpu_ns";
  EXPECT_NE(tracer.find_name(track), Tracer::kNoName);
  for (const TraceEvent& e : tracer.events()) {
    EXPECT_EQ(e.kind, EventKind::kCounter);
    EXPECT_EQ(e.ts, 5'000);
    EXPECT_EQ(e.host, 1);
  }

  // No new samples since the last flush: a second flush emits nothing
  // (cumulative tracks only advance when the totals do).
  prof.flush_to_tracer(tracer, 6'000);
  EXPECT_EQ(tracer.events().size(), after_first);

  {
    ScopedContext ctx(&prof, 1, "core");
    ScopedProfile region(current(), "radix_pass1", 100);
    burn_cpu();
  }
  prof.flush_to_tracer(tracer, 7'000);
  EXPECT_GT(tracer.events().size(), after_first);
}

// ----- end to end through the simulator ------------------------------------

TEST(ProfiledRun, ReportCarriesPerPhaseProfileAndTraceGetsTracks) {
  rel::Relation r = rel::generate({.rows = 20'000, .seed = 61}, "R", 1);
  rel::Relation s = rel::generate({.rows = 20'000, .seed = 62}, "S", 2);
  cyclo::ClusterConfig cfg;
  cfg.num_hosts = 3;
  cfg.node.buffer_bytes = 16 * 1024;
  cfg.trace.enabled = true;
  cfg.profile.enabled = true;

  cyclo::CycloJoin cyclo(cfg, {.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport report = cyclo.run(r, s);

  ASSERT_FALSE(report.profile.empty());
  bool saw_build = false, saw_probe = false;
  for (const KernelProfile::Row& row : report.profile.rows) {
    EXPECT_GE(row.host, 0);
    EXPECT_LT(row.host, 3);
    EXPECT_GT(row.totals.invocations, 0u);
    EXPECT_GT(row.totals.cpu_ns, 0);
    saw_build |= row.phase == "hash_build";
    saw_probe |= row.phase == "probe";
  }
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_probe);

  // The trace carries the cumulative per-phase counter tracks.
  ASSERT_NE(report.trace, nullptr);
  const char* track = report.profile.hardware ? "prof.probe.cycles"
                                              : "prof.probe.cpu_ns";
  EXPECT_NE(report.trace->find_name(track), Tracer::kNoName);

  // An unprofiled run of the same workload reports no profile.
  cyclo::ClusterConfig off = cfg;
  off.profile.enabled = false;
  off.trace.enabled = false;
  cyclo::CycloJoin plain(off, {.algorithm = cyclo::Algorithm::kHashJoin});
  EXPECT_TRUE(plain.run(r, s).profile.empty());
}

TEST(ProfiledRun, JoinResultsMatchUnprofiledRun) {
  // Profiling perturbs virtual-time *measurements*, never join semantics:
  // the result checksum must be identical with and without it.
  rel::Relation r = rel::generate({.rows = 10'000, .seed = 71}, "R", 1);
  rel::Relation s = rel::generate({.rows = 10'000, .seed = 72}, "S", 2);
  cyclo::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cyclo::JoinSpec spec{.algorithm = cyclo::Algorithm::kHashJoin};

  cyclo::CycloJoin plain(cfg, spec);
  const cyclo::RunReport a = plain.run(r, s);
  cfg.profile.enabled = true;
  cyclo::CycloJoin profiled(cfg, spec);
  const cyclo::RunReport b = profiled.run(r, s);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.matches, b.matches);
}

}  // namespace
}  // namespace cj::obs::prof
