// Direct tests of the Wire abstraction (RdmaWire / TcpWire) below the
// RoundaboutNode: posted-buffer matching, tags, zero-length messages,
// payload integrity, concurrent senders.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "net/link.h"
#include "ring/frame.h"
#include "rdma/verbs.h"
#include "ring/rdma_wire.h"
#include "ring/tcp_wire.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/when_all.h"
#include "tcpsim/tcp.h"

namespace cj::ring {
namespace {

using sim::Engine;
using sim::Task;

// A pair of Wires (A's out-wire and B's in-wire of the same connection),
// over either transport.
struct WirePair {
  Engine engine;
  sim::CorePool cores_a{engine, 4};
  sim::CorePool cores_b{engine, 4};
  net::DuplexLink link{engine, net::LinkSpec{}, "wire"};

  // RDMA plumbing.
  std::unique_ptr<rdma::Device> dev_a, dev_b;
  std::unique_ptr<rdma::CompletionQueue> a_scq, a_rcq, b_scq, b_rcq;

  // TCP plumbing.
  std::unique_ptr<tcpsim::TcpConnection> data_conn, credit_conn;

  std::unique_ptr<Wire> a_out;  // sends data A->B, receives credits
  std::unique_ptr<Wire> b_in;   // receives data, sends credits B->A

  explicit WirePair(bool rdma) {
    if (rdma) {
      dev_a = std::make_unique<rdma::Device>(engine, cores_a, rdma::DeviceAttr{}, "a");
      dev_b = std::make_unique<rdma::Device>(engine, cores_b, rdma::DeviceAttr{}, "b");
      a_scq = std::make_unique<rdma::CompletionQueue>(engine, 256);
      a_rcq = std::make_unique<rdma::CompletionQueue>(engine, 256);
      b_scq = std::make_unique<rdma::CompletionQueue>(engine, 256);
      b_rcq = std::make_unique<rdma::CompletionQueue>(engine, 256);
      rdma::QueuePair& qp_a = dev_a->create_qp(a_scq.get(), a_rcq.get());
      rdma::QueuePair& qp_b = dev_b->create_qp(b_scq.get(), b_rcq.get());
      rdma::connect(qp_a, qp_b, link.forward, link.backward);
      a_out = std::make_unique<RdmaWire>(*dev_a, qp_a, *a_scq, *a_rcq);
      b_in = std::make_unique<RdmaWire>(*dev_b, qp_b, *b_scq, *b_rcq);
    } else {
      data_conn = std::make_unique<tcpsim::TcpConnection>(
          engine, cores_a, cores_b, link.forward, tcpsim::TcpModelConfig{});
      credit_conn = std::make_unique<tcpsim::TcpConnection>(
          engine, cores_b, cores_a, link.backward, tcpsim::TcpModelConfig{});
      a_out = std::make_unique<TcpWire>(engine, *data_conn, *credit_conn, 16);
      b_in = std::make_unique<TcpWire>(engine, *credit_conn, *data_conn, 16);
    }
  }

  void finish() {
    a_out->close_send();
    b_in->close_send();
    a_out->close_recv();
    b_in->close_recv();
  }
};

class WireTransports : public ::testing::TestWithParam<bool> {};

TEST_P(WireTransports, MessageLandsInPostedBufferWithTag) {
  WirePair pair(GetParam());
  std::vector<std::byte> src(1000);
  std::vector<std::byte> dst(2048);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i);
  Arrival arrival{};
  pair.engine.spawn(
      [](WirePair& pair, std::span<std::byte> src, std::span<std::byte> dst,
         Arrival* out) -> Task<void> {
        co_await pair.a_out->prepare(src);
        co_await pair.b_in->prepare(dst);
        co_await pair.b_in->post_recv(17, dst);
        co_await pair.a_out->send(src);
        *out = co_await pair.b_in->next_arrival();
        pair.finish();
      }(pair, src, dst, &arrival),
      "driver");
  pair.engine.run();
  pair.engine.check_all_complete();
  EXPECT_EQ(arrival.tag, 17u);
  EXPECT_EQ(arrival.length, src.size());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST_P(WireTransports, PostedBuffersConsumedFifo) {
  WirePair pair(GetParam());
  std::vector<std::byte> src(64);
  std::vector<std::byte> dst(4 * 64);
  std::vector<std::uint64_t> tags;
  pair.engine.spawn(
      [](WirePair& pair, std::span<std::byte> src, std::span<std::byte> dst,
         std::vector<std::uint64_t>* tags) -> Task<void> {
        co_await pair.a_out->prepare(src);
        co_await pair.b_in->prepare(dst);
        for (int i = 0; i < 4; ++i) {
          co_await pair.b_in->post_recv(static_cast<std::uint64_t>(10 + i),
                                        dst.subspan(static_cast<std::size_t>(i) * 64, 64));
        }
        for (int i = 0; i < 4; ++i) {
          std::memset(src.data(), 0x40 + i, src.size());
          co_await pair.a_out->send(src);
        }
        for (int i = 0; i < 4; ++i) {
          tags->push_back((co_await pair.b_in->next_arrival()).tag);
        }
        pair.finish();
      }(pair, src, dst, &tags),
      "driver");
  pair.engine.run();
  pair.engine.check_all_complete();
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{10, 11, 12, 13}));
  // Message i landed in buffer i.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<int>(dst[static_cast<std::size_t>(i) * 64]), 0x40 + i);
  }
}

TEST_P(WireTransports, ZeroLengthMessagesAreDeliveredAsAcks) {
  WirePair pair(GetParam());
  std::vector<std::byte> slot(8);
  std::vector<std::byte> dst(64);
  Arrival arrival{};
  pair.engine.spawn(
      [](WirePair& pair, std::span<std::byte> slot, std::span<std::byte> dst,
         Arrival* out) -> Task<void> {
        co_await pair.a_out->prepare(slot);
        co_await pair.b_in->prepare(dst);
        co_await pair.b_in->post_recv(5, dst);
        co_await pair.a_out->send(std::span<const std::byte>(slot.data(), 0));
        *out = co_await pair.b_in->next_arrival();
        pair.finish();
      }(pair, slot, dst, &arrival),
      "driver");
  pair.engine.run();
  pair.engine.check_all_complete();
  EXPECT_EQ(arrival.tag, 5u);
  EXPECT_EQ(arrival.length, 0u);
}

TEST_P(WireTransports, BidirectionalTrafficOnOneConnection) {
  // Data A->B while credits flow B->A, concurrently.
  WirePair pair(GetParam());
  std::vector<std::byte> data(512);
  std::vector<std::byte> data_dst(512);
  std::vector<std::byte> credit(8);
  std::vector<std::byte> credit_dst(8);
  int credits_seen = 0;
  pair.engine.spawn(
      [](WirePair& pair, std::span<std::byte> data, std::span<std::byte> data_dst,
         std::span<std::byte> credit, std::span<std::byte> credit_dst,
         int* credits_seen) -> Task<void> {
        co_await pair.a_out->prepare(data);
        co_await pair.a_out->prepare(credit_dst);
        co_await pair.b_in->prepare(data_dst);
        co_await pair.b_in->prepare(credit);

        for (int round = 0; round < 3; ++round) {
          co_await pair.b_in->post_recv(1, data_dst);
          co_await pair.a_out->post_recv(2, credit_dst);
          co_await pair.a_out->send(data);
          (void)co_await pair.b_in->next_arrival();
          co_await pair.b_in->send(credit);  // credit back
          const Arrival c = co_await pair.a_out->next_arrival();
          if (c.tag == 2) ++*credits_seen;
        }
        pair.finish();
      }(pair, data, data_dst, credit, credit_dst, &credits_seen),
      "driver");
  pair.engine.run();
  pair.engine.check_all_complete();
  EXPECT_EQ(credits_seen, 3);
}

INSTANTIATE_TEST_SUITE_P(Transports, WireTransports,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Rdma" : "Tcp";
                         });

// ----- frame codec: the query-group field ----------------------------------

TEST(FrameCodec, LayoutStaysAt24BytesWithQueryField) {
  static_assert(sizeof(FrameHeader) == 24);
  FrameHeader h;
  EXPECT_EQ(h.query, 0);  // default: standalone runs stay in group 0
}

TEST(FrameCodec, MakeFrameWithoutQueryDefaultsToZero) {
  const std::vector<std::byte> payload(64, std::byte{0x5A});
  // Legacy call shape (no query argument) must keep producing group-0
  // frames so pre-serving callers and traces are unchanged.
  const FrameHeader h = make_frame(FrameKind::kData, 2, 7, payload);
  EXPECT_EQ(h.query, 0);
  EXPECT_EQ(h.origin, 2);
  EXPECT_EQ(h.seq, 7u);
}

TEST(FrameCodec, QueryFieldRoundTrips) {
  const std::vector<std::byte> payload(128, std::byte{0x33});
  const FrameHeader sealed =
      make_frame(FrameKind::kData, 1, 42, payload, /*flags=*/0, /*query=*/713);

  std::vector<std::byte> wire(kFrameBytes + payload.size());
  encode_frame(sealed, wire.data());
  std::memcpy(wire.data() + kFrameBytes, payload.data(), payload.size());

  FrameHeader decoded;
  ASSERT_TRUE(decode_frame(wire, &decoded));
  EXPECT_EQ(decoded.query, 713);
  EXPECT_EQ(decoded.origin, 1);
  EXPECT_EQ(decoded.seq, 42u);
}

TEST(FrameCodec, ChecksumCoversQueryField) {
  const std::vector<std::byte> payload(64, std::byte{0x11});
  const FrameHeader sealed =
      make_frame(FrameKind::kData, 0, 9, payload, /*flags=*/0, /*query=*/5);

  std::vector<std::byte> wire(kFrameBytes + payload.size());
  encode_frame(sealed, wire.data());
  std::memcpy(wire.data() + kFrameBytes, payload.data(), payload.size());

  // Tamper with the query field on the wire without resealing: the frame
  // must fail its checksum instead of aliasing into another query group.
  wire[offsetof(FrameHeader, query)] ^= std::byte{0x01};
  FrameHeader decoded;
  EXPECT_FALSE(decode_frame(wire, &decoded));
}

TEST(FrameCodec, FuzzEncodeDecodeNeverAliasesAcrossQueries) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> query_dist(0, 0xFFFF);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<std::size_t> len_dist(0, 256);
  std::uniform_int_distribution<std::uint32_t> seq_dist(0, 1u << 30);

  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::byte> payload(len_dist(rng));
    for (std::byte& b : payload) b = static_cast<std::byte>(byte_dist(rng));
    const auto query = static_cast<std::uint16_t>(query_dist(rng));
    const std::uint32_t seq = seq_dist(rng);
    const int origin = iter % 8;

    const FrameHeader sealed = make_frame(FrameKind::kData, origin, seq,
                                          payload, /*flags=*/0, query);
    std::vector<std::byte> wire(kFrameBytes + payload.size());
    encode_frame(sealed, wire.data());
    if (!payload.empty()) {
      std::memcpy(wire.data() + kFrameBytes, payload.data(), payload.size());
    }

    // Decoding returns exactly the query group that was written.
    FrameHeader decoded;
    ASSERT_TRUE(decode_frame(wire, &decoded)) << "iter " << iter;
    EXPECT_EQ(decoded.query, query) << "iter " << iter;
    EXPECT_EQ(decoded.seq, seq) << "iter " << iter;

    // Re-stamping the same (origin, seq, payload) with a different group
    // never yields a wire-identical frame: the checksum separates them.
    const auto other = static_cast<std::uint16_t>(query ^ 0x1);
    const FrameHeader resealed = make_frame(FrameKind::kData, origin, seq,
                                            payload, /*flags=*/0, other);
    EXPECT_NE(resealed.checksum, sealed.checksum) << "iter " << iter;

    // A random single-byte corruption anywhere in the message either fails
    // the decode or (if it misses frame + payload entirely) is impossible —
    // the query group can never silently change.
    std::vector<std::byte> mangled = wire;
    const std::size_t flip =
        std::uniform_int_distribution<std::size_t>(0, mangled.size() - 1)(rng);
    mangled[flip] ^= static_cast<std::byte>(1 + byte_dist(rng) % 255);
    FrameHeader mangled_header;
    if (decode_frame(mangled, &mangled_header)) {
      // Only possible if the flip XOR'd to a no-op, which we excluded.
      ADD_FAILURE() << "corrupted frame decoded at iter " << iter;
    }
  }
}

TEST(FrameCodec, ReplayFlagAndQueryGroupCoexist) {
  const std::vector<std::byte> payload(32, std::byte{0x77});
  const FrameHeader h = make_frame(FrameKind::kData, 3, 11, payload,
                                   kFrameFlagReplay, /*query=*/99);
  std::vector<std::byte> wire(kFrameBytes + payload.size());
  encode_frame(h, wire.data());
  std::memcpy(wire.data() + kFrameBytes, payload.data(), payload.size());
  FrameHeader decoded;
  ASSERT_TRUE(decode_frame(wire, &decoded));
  EXPECT_EQ(decoded.flags & kFrameFlagReplay, kFrameFlagReplay);
  EXPECT_EQ(decoded.query, 99);
}

TEST(RdmaWireDeath, SendingUnregisteredMemoryAborts) {
  WirePair pair(true);
  std::vector<std::byte> rogue(64);
  pair.engine.spawn(
      [](WirePair& pair, std::span<std::byte> rogue) -> Task<void> {
        co_await pair.a_out->send(rogue);
      }(pair, rogue),
      "driver");
  EXPECT_DEATH(pair.engine.run(), "registered");
}

}  // namespace
}  // namespace cj::ring
