// Randomized stress tests for the simulation substrate: many processes
// hammering channels, semaphores and core pools with random interleavings.
// Invariants: conservation (everything produced is consumed exactly once),
// capacity/concurrency limits are never exceeded, the engine always drains,
// and identical seeds produce identical virtual schedules.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/when_all.h"

namespace cj::sim {
namespace {

struct StressOutcome {
  std::vector<std::pair<int, int>> consumed;  // (producer, seq)
  SimTime end_time = 0;
  std::uint64_t events = 0;
};

// `producers` processes push tagged items through a shared bounded channel
// with random virtual pacing; `consumers` drain it with their own pacing.
StressOutcome run_channel_stress(std::uint64_t seed, int producers, int consumers,
                                 int items_per_producer, std::size_t capacity) {
  Engine engine;
  Channel<std::pair<int, int>> channel(engine, capacity);
  StressOutcome out;

  auto producer = [](Engine& engine, Channel<std::pair<int, int>>& channel,
                     Rng rng, int id, int items) -> Task<void> {
    for (int i = 0; i < items; ++i) {
      co_await engine.sleep(static_cast<SimDuration>(rng.next_below(50)) *
                            kMicrosecond);
      co_await channel.push({id, i});
    }
  };
  auto consumer = [](Engine& engine, Channel<std::pair<int, int>>& channel,
                     Rng rng, StressOutcome* out) -> Task<void> {
    while (auto item = co_await channel.pop()) {
      out->consumed.push_back(*item);
      co_await engine.sleep(static_cast<SimDuration>(rng.next_below(30)) *
                            kMicrosecond);
    }
  };

  Rng root(seed);
  std::vector<ProcessHandle> handles;
  std::vector<Task<void>> producer_tasks;
  for (int p = 0; p < producers; ++p) {
    producer_tasks.push_back(
        producer(engine, channel, root.split(), p, items_per_producer));
  }
  // Close the channel once all producers finish.
  engine.spawn(
      [](Engine& engine, Channel<std::pair<int, int>>& channel,
         std::vector<Task<void>> tasks) -> Task<void> {
        co_await when_all(engine, std::move(tasks));
        channel.close();
      }(engine, channel, std::move(producer_tasks)),
      "producers");
  for (int c = 0; c < consumers; ++c) {
    engine.spawn(consumer(engine, channel, root.split(), &out), "consumer");
  }

  engine.run();
  engine.check_all_complete();
  out.end_time = engine.now();
  out.events = engine.events_processed();
  return out;
}

class ChannelStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelStress, EveryItemConsumedExactlyOnceAndInOrderPerProducer) {
  const StressOutcome out = run_channel_stress(GetParam(), 5, 3, 40, 4);
  ASSERT_EQ(out.consumed.size(), 200u);
  std::map<int, int> next_seq;
  std::map<std::pair<int, int>, int> times_seen;
  for (const auto& item : out.consumed) ++times_seen[item];
  for (const auto& [item, count] : times_seen) EXPECT_EQ(count, 1);
  // FIFO channel + FIFO producers: each producer's items leave in order.
  std::map<int, int> last;
  for (const auto& [producer, seq] : out.consumed) {
    auto it = last.find(producer);
    if (it != last.end()) {
      EXPECT_GT(seq, it->second);
    }
    last[producer] = seq;
  }
}

TEST_P(ChannelStress, DeterministicReplay) {
  const StressOutcome a = run_channel_stress(GetParam(), 4, 2, 25, 3);
  const StressOutcome b = run_channel_stress(GetParam(), 4, 2, 25, 3);
  EXPECT_EQ(a.consumed, b.consumed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelStress,
                         ::testing::Values(1, 7, 42, 1234, 999983));

TEST(CorePoolStress, MakespanBoundsProveBoundedConcurrency) {
  Engine engine;
  constexpr int kCores = 3;
  CorePool pool(engine, kCores);
  Rng rng(77);

  SimDuration total = 0;
  SimDuration longest = 0;
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 60; ++i) {
    const auto cost =
        static_cast<SimDuration>(rng.next_in(1, 400)) * kMicrosecond;
    total += cost;
    longest = std::max(longest, cost);
    tasks.push_back(pool.consume(cost, "stress"));
  }
  engine.spawn(when_all(engine, std::move(tasks)), "batch");
  engine.run();
  engine.check_all_complete();
  // All work was done (busy conservation), never on more than kCores
  // simultaneously (makespan >= total/kCores), and without idling while
  // work was queued (non-preemptive bound: makespan <= total/kCores + max).
  EXPECT_EQ(pool.busy_total(), total);
  EXPECT_GE(engine.now() * kCores, total);
  EXPECT_LE(engine.now(), total / kCores + longest);
}

TEST(SemaphoreStress, CountNeverGoesNegative) {
  Engine engine;
  Semaphore sem(engine, 5);
  Rng rng(99);
  int inside = 0;
  bool violated = false;

  std::vector<Task<void>> tasks;
  for (int i = 0; i < 100; ++i) {
    const auto hold =
        static_cast<SimDuration>(rng.next_in(1, 100)) * kMicrosecond;
    tasks.push_back([](Engine& engine, Semaphore& sem, SimDuration hold,
                       int* inside, bool* violated) -> Task<void> {
      co_await sem.acquire();
      if (++*inside > 5) *violated = true;
      co_await engine.sleep(hold);
      --*inside;
      sem.release();
    }(engine, sem, hold, &inside, &violated));
  }
  engine.spawn(when_all(engine, std::move(tasks)), "batch");
  engine.run();
  engine.check_all_complete();
  EXPECT_FALSE(violated);
  EXPECT_EQ(sem.available(), 5);
}

TEST(EngineStress, ManyProcessesManyEvents) {
  Engine engine;
  std::uint64_t total_ticks = 0;
  for (int p = 0; p < 200; ++p) {
    engine.spawn(
        [](Engine& engine, std::uint64_t* total, int id) -> Task<void> {
          for (int i = 0; i < 50; ++i) {
            co_await engine.sleep((id % 7 + 1) * kMicrosecond);
            ++*total;
          }
        }(engine, &total_ticks, p),
        "p");
  }
  engine.run();
  engine.check_all_complete();
  EXPECT_EQ(total_ticks, 10'000u);
  EXPECT_GE(engine.events_processed(), 10'000u);
}

}  // namespace
}  // namespace cj::sim
