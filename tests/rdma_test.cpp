// Unit tests for the verbs substrate: registration, queue pairs,
// send/recv matching, one-sided ops, completion queues, failure modes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/link.h"
#include "rdma/verbs.h"
#include "sim/core_pool.h"
#include "sim/engine.h"

namespace cj::rdma {
namespace {

using sim::Engine;
using sim::Task;

struct Rig {
  Engine engine;
  sim::CorePool cores_a{engine, 4};
  sim::CorePool cores_b{engine, 4};
  net::DuplexLink link{engine, net::LinkSpec{}, "rig"};
  Device dev_a{engine, cores_a, {}, "a"};
  Device dev_b{engine, cores_b, {}, "b"};
  CompletionQueue a_scq{engine, 128}, a_rcq{engine, 128};
  CompletionQueue b_scq{engine, 128}, b_rcq{engine, 128};
  QueuePair* qp_a = nullptr;
  QueuePair* qp_b = nullptr;

  Rig() {
    qp_a = &dev_a.create_qp(&a_scq, &a_rcq);
    qp_b = &dev_b.create_qp(&b_scq, &b_rcq);
    connect(*qp_a, *qp_b, link.forward, link.backward);
  }
};

TEST(MemoryRegion, RegistrationBillsCpuAndTracksBytes) {
  Engine e;
  sim::CorePool cores(e, 4);
  Device dev(e, cores, {}, "d");
  std::vector<std::byte> buf(64 * 1024);
  MemoryRegion* mr = nullptr;
  e.spawn(
      [](Device& dev, std::span<std::byte> buf, MemoryRegion** out) -> Task<void> {
        *out = co_await dev.pd().register_memory(buf);
      }(dev, buf, &mr),
      "reg");
  e.run();
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->size(), buf.size());
  EXPECT_EQ(dev.pd().registered_bytes(), buf.size());
  EXPECT_GT(cores.busy_for("mr-reg"), 0);
  // 16 pages at 400 ns + 10 us base.
  EXPECT_EQ(cores.busy_for("mr-reg"), 10 * kMicrosecond + 16 * 400);
}

TEST(MemoryRegion, FindRegionMatchesContainment) {
  Engine e;
  sim::CorePool cores(e, 4);
  Device dev(e, cores, {}, "d");
  std::vector<std::byte> buf(4096);
  e.spawn(
      [](Device& dev, std::span<std::byte> buf) -> Task<void> {
        co_await dev.pd().register_memory(buf);
      }(dev, buf),
      "reg");
  e.run();
  EXPECT_NE(dev.pd().find_region(buf.data(), 4096), nullptr);
  EXPECT_NE(dev.pd().find_region(buf.data() + 100, 1000), nullptr);
  EXPECT_EQ(dev.pd().find_region(buf.data() + 100, 4096), nullptr);  // overruns
  std::byte other;
  EXPECT_EQ(dev.pd().find_region(&other, 1), nullptr);
}

TEST(MemoryRegion, DeregisterRemoves) {
  Engine e;
  sim::CorePool cores(e, 4);
  Device dev(e, cores, {}, "d");
  std::vector<std::byte> buf(4096);
  MemoryRegion* mr = nullptr;
  e.spawn(
      [](Device& dev, std::span<std::byte> buf, MemoryRegion** out) -> Task<void> {
        *out = co_await dev.pd().register_memory(buf);
      }(dev, buf, &mr),
      "reg");
  e.run();
  dev.pd().deregister(mr);
  EXPECT_EQ(dev.pd().registered_bytes(), 0u);
  EXPECT_EQ(dev.pd().find_region(buf.data(), 1), nullptr);
}

TEST(QueuePair, SendRecvDeliversPayloadAndCompletions) {
  Rig rig;
  std::vector<std::byte> src(8192);
  std::vector<std::byte> dst(8192);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i * 7);

  Completion send_c{}, recv_c{};
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> src, std::span<std::byte> dst,
         Completion* send_c, Completion* recv_c) -> Task<void> {
        MemoryRegion* src_mr = co_await rig.dev_a.pd().register_memory(src);
        MemoryRegion* dst_mr = co_await rig.dev_b.pd().register_memory(dst);

        WorkRequest recv;
        recv.wr_id = 77;
        recv.mr = dst_mr;
        recv.length = dst.size();
        EXPECT_TRUE(rig.qp_b->post_recv(recv).is_ok());

        WorkRequest send;
        send.wr_id = 42;
        send.mr = src_mr;
        send.length = src.size();
        EXPECT_TRUE(rig.qp_a->post_send(send).is_ok());

        *send_c = co_await rig.a_scq.next();
        *recv_c = co_await rig.b_rcq.next();
        rig.qp_a->close();
        rig.qp_b->close();
      }(rig, src, dst, &send_c, &recv_c),
      "driver");
  rig.engine.run();
  rig.engine.check_all_complete();

  EXPECT_EQ(send_c.wr_id, 42u);
  EXPECT_EQ(send_c.opcode, Opcode::kSend);
  EXPECT_EQ(recv_c.wr_id, 77u);
  EXPECT_EQ(recv_c.byte_len, src.size());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(QueuePair, MessagesMatchRecvsInFifoOrder) {
  Rig rig;
  std::vector<std::byte> src(128);
  std::vector<std::byte> dst(4 * 128);
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> src, std::span<std::byte> dst) -> Task<void> {
        MemoryRegion* src_mr = co_await rig.dev_a.pd().register_memory(src);
        MemoryRegion* dst_mr = co_await rig.dev_b.pd().register_memory(dst);
        for (int i = 0; i < 4; ++i) {
          WorkRequest recv;
          recv.wr_id = static_cast<std::uint64_t>(i);
          recv.mr = dst_mr;
          recv.offset = static_cast<std::size_t>(i) * 128;
          recv.length = 128;
          EXPECT_TRUE(rig.qp_b->post_recv(recv).is_ok());
        }
        for (int i = 0; i < 4; ++i) {
          std::memset(src.data(), i + 1, src.size());
          WorkRequest send;
          send.wr_id = static_cast<std::uint64_t>(100 + i);
          send.mr = src_mr;
          send.length = src.size();
          EXPECT_TRUE(rig.qp_a->post_send(send).is_ok());
          co_await rig.a_scq.next();  // wait so the source buffer is reusable
        }
        for (int i = 0; i < 4; ++i) {
          const Completion c = co_await rig.b_rcq.next();
          EXPECT_EQ(c.wr_id, static_cast<std::uint64_t>(i));
        }
        rig.qp_a->close();
        rig.qp_b->close();
      }(rig, src, dst),
      "driver");
  rig.engine.run();
  rig.engine.check_all_complete();
  // Message i landed in recv buffer i.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<int>(dst[static_cast<std::size_t>(i) * 128]), i + 1);
  }
}

TEST(QueuePair, RdmaWriteIsOneSided) {
  Rig rig;
  std::vector<std::byte> src(1024, std::byte{0xAB});
  std::vector<std::byte> dst(4096);
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> src, std::span<std::byte> dst) -> Task<void> {
        MemoryRegion* src_mr = co_await rig.dev_a.pd().register_memory(src);
        MemoryRegion* dst_mr = co_await rig.dev_b.pd().register_memory(dst);
        WorkRequest wr;
        wr.wr_id = 1;
        wr.opcode = Opcode::kRdmaWrite;
        wr.mr = src_mr;
        wr.length = src.size();
        wr.remote_mr = dst_mr;
        wr.remote_offset = 512;
        EXPECT_TRUE(rig.qp_a->post_send(wr).is_ok());
        const Completion c = co_await rig.a_scq.next();
        EXPECT_EQ(c.opcode, Opcode::kRdmaWrite);
        rig.qp_a->close();
        rig.qp_b->close();
      }(rig, src, dst),
      "driver");
  rig.engine.run();
  rig.engine.check_all_complete();
  EXPECT_EQ(dst[512], std::byte{0xAB});
  EXPECT_EQ(dst[511], std::byte{0});
  // No receive was consumed and no receiver completion generated.
  EXPECT_EQ(rig.b_rcq.depth(), 0u);
}

TEST(QueuePair, RdmaReadPullsRemoteData) {
  Rig rig;
  std::vector<std::byte> local(1024);
  std::vector<std::byte> remote(1024, std::byte{0x5C});
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> local,
         std::span<std::byte> remote) -> Task<void> {
        MemoryRegion* local_mr = co_await rig.dev_a.pd().register_memory(local);
        MemoryRegion* remote_mr = co_await rig.dev_b.pd().register_memory(remote);
        WorkRequest wr;
        wr.wr_id = 9;
        wr.opcode = Opcode::kRdmaRead;
        wr.mr = local_mr;
        wr.length = local.size();
        wr.remote_mr = remote_mr;
        EXPECT_TRUE(rig.qp_a->post_send(wr).is_ok());
        const Completion c = co_await rig.a_scq.next();
        EXPECT_EQ(c.opcode, Opcode::kRdmaRead);
        rig.qp_a->close();
        rig.qp_b->close();
      }(rig, local, remote),
      "driver");
  rig.engine.run();
  rig.engine.check_all_complete();
  EXPECT_EQ(local[0], std::byte{0x5C});
  EXPECT_EQ(local[1023], std::byte{0x5C});
}

TEST(QueuePair, PostSendOnUnconnectedQpFails) {
  Engine e;
  sim::CorePool cores(e, 4);
  Device dev(e, cores, {}, "d");
  CompletionQueue scq(e, 16), rcq(e, 16);
  QueuePair& qp = dev.create_qp(&scq, &rcq);
  std::vector<std::byte> buf(128);
  MemoryRegion* mr = nullptr;
  e.spawn(
      [](Device& dev, std::span<std::byte> buf, MemoryRegion** out) -> Task<void> {
        *out = co_await dev.pd().register_memory(buf);
      }(dev, buf, &mr),
      "reg");
  e.run();
  WorkRequest wr;
  wr.mr = mr;
  wr.length = 128;
  const Status st = qp.post_send(wr);
  EXPECT_EQ(st.code(), ErrorCode::kFailedPrecondition);
}

TEST(QueuePair, SendQueueExhaustionIsReported) {
  Rig rig;
  std::vector<std::byte> buf(16);
  MemoryRegion* mr = nullptr;
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> buf, MemoryRegion** out) -> Task<void> {
        *out = co_await rig.dev_a.pd().register_memory(buf);
      }(rig, buf, &mr),
      "reg");
  rig.engine.run();

  // Fill the send queue without running the engine (the NIC never drains).
  WorkRequest wr;
  wr.mr = mr;
  wr.length = 16;
  Status st = Status::ok();
  std::uint32_t posted = 0;
  while ((st = rig.qp_a->post_send(wr)).is_ok()) ++posted;
  // The NIC's sender process takes the first WR for processing immediately
  // (direct handoff), so the queue accepts its depth plus that one.
  EXPECT_EQ(posted, rig.dev_a.attr().max_send_wr + 1);
  EXPECT_EQ(st.code(), ErrorCode::kResourceExhausted);
}

TEST(QueuePair, RecvQueueExhaustionIsReported) {
  Rig rig;
  std::vector<std::byte> buf(16);
  MemoryRegion* mr = nullptr;
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> buf, MemoryRegion** out) -> Task<void> {
        *out = co_await rig.dev_b.pd().register_memory(buf);
      }(rig, buf, &mr),
      "reg");
  rig.engine.run();

  WorkRequest wr;
  wr.mr = mr;
  wr.length = 16;
  Status st = Status::ok();
  std::uint32_t posted = 0;
  while ((st = rig.qp_b->post_recv(wr)).is_ok()) ++posted;
  EXPECT_EQ(posted, rig.dev_b.attr().max_recv_wr);
  EXPECT_EQ(st.code(), ErrorCode::kResourceExhausted);
}

// A rig whose sender-side CQ is too small for the posted work, so send
// completions overrun it while the poller is away.
struct TinyCqRig {
  Engine engine;
  sim::CorePool cores_a{engine, 4};
  sim::CorePool cores_b{engine, 4};
  net::DuplexLink link{engine, net::LinkSpec{}, "rig"};
  Device dev_a{engine, cores_a, {}, "a"};
  Device dev_b{engine, cores_b, {}, "b"};
  CompletionQueue a_scq;
  CompletionQueue a_rcq{engine, 16};
  CompletionQueue b_scq{engine, 16}, b_rcq{engine, 16};
  QueuePair* qp_a = nullptr;
  QueuePair* qp_b = nullptr;

  explicit TinyCqRig(bool abort_on_overrun)
      : a_scq(engine, 2, abort_on_overrun) {
    qp_a = &dev_a.create_qp(&a_scq, &a_rcq);
    qp_b = &dev_b.create_qp(&b_scq, &b_rcq);
    connect(*qp_a, *qp_b, link.forward, link.backward);
  }

  // Moves six messages while nobody polls the send CQ (capacity 2).
  Task<void> flood() {
    std::vector<std::byte> src(64);
    std::vector<std::byte> dst(6 * 64);
    MemoryRegion* src_mr = co_await dev_a.pd().register_memory(src);
    MemoryRegion* dst_mr = co_await dev_b.pd().register_memory(dst);
    for (int i = 0; i < 6; ++i) {
      WorkRequest recv;
      recv.wr_id = static_cast<std::uint64_t>(i);
      recv.mr = dst_mr;
      recv.offset = static_cast<std::size_t>(i) * 64;
      recv.length = 64;
      EXPECT_TRUE(qp_b->post_recv(recv).is_ok());
    }
    for (int i = 0; i < 6; ++i) {
      WorkRequest send;
      send.wr_id = static_cast<std::uint64_t>(100 + i);
      send.mr = src_mr;
      send.length = src.size();
      EXPECT_TRUE(qp_a->post_send(send).is_ok());
    }
    for (int i = 0; i < 6; ++i) co_await b_rcq.next();
  }
};

TEST(CompletionQueueOverrun, SurfacesErrorCompletionToPoller) {
  TinyCqRig rig(/*abort_on_overrun=*/false);
  rig.engine.spawn(rig.flood(), "flood");
  rig.engine.run();

  ASSERT_TRUE(rig.a_scq.overrun());
  EXPECT_EQ(rig.a_scq.depth(), 2u);  // completions posted before the overrun

  std::vector<Completion> polled;
  rig.engine.spawn(
      [](TinyCqRig& rig, std::vector<Completion>& out) -> Task<void> {
        for (int i = 0; i < 4; ++i) out.push_back(co_await rig.a_scq.next());
        rig.qp_a->close();
        rig.qp_b->close();
      }(rig, polled),
      "poller");
  rig.engine.run();
  rig.engine.check_all_complete();

  // The two buffered completions drain first, then the overrun error is
  // reported on every subsequent poll instead of blocking forever.
  ASSERT_EQ(polled.size(), 4u);
  EXPECT_EQ(polled[0].status, WcStatus::kSuccess);
  EXPECT_EQ(polled[1].status, WcStatus::kSuccess);
  EXPECT_EQ(polled[2].status, WcStatus::kCqOverrun);
  EXPECT_EQ(polled[3].status, WcStatus::kCqOverrun);
  EXPECT_FALSE(polled[2].ok());
}

TEST(CompletionQueueOverrunDeath, AbortModeRestoresFailStop) {
  EXPECT_DEATH(
      {
        TinyCqRig rig(/*abort_on_overrun=*/true);
        rig.engine.spawn(rig.flood(), "flood");
        rig.engine.run();
      },
      "completion queue overrun");
}

TEST(Throughput, LargeMessagesApproachWireSpeed) {
  // 16 MB in one message over a 1.25 GB/s link: elapsed time (measured
  // from after registration) should be within a few percent of
  // bytes/bandwidth.
  Rig rig;
  const std::size_t bytes = 16 * 1024 * 1024;
  std::vector<std::byte> src(bytes), dst(bytes);
  SimTime start = 0, end = 0;
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> src, std::span<std::byte> dst,
         SimTime* start, SimTime* end) -> Task<void> {
        MemoryRegion* src_mr = co_await rig.dev_a.pd().register_memory(src);
        MemoryRegion* dst_mr = co_await rig.dev_b.pd().register_memory(dst);
        *start = rig.engine.now();
        WorkRequest recv;
        recv.mr = dst_mr;
        recv.length = dst.size();
        EXPECT_TRUE(rig.qp_b->post_recv(recv).is_ok());
        WorkRequest send;
        send.mr = src_mr;
        send.length = src.size();
        EXPECT_TRUE(rig.qp_a->post_send(send).is_ok());
        co_await rig.b_rcq.next();
        *end = rig.engine.now();
        rig.qp_a->close();
        rig.qp_b->close();
      }(rig, src, dst, &start, &end),
      "driver");
  rig.engine.run();
  const double elapsed = to_seconds(end - start);
  const double ideal = static_cast<double>(bytes) / 1.25e9;
  EXPECT_NEAR(elapsed, ideal, ideal * 0.05);
}

}  // namespace
}  // namespace cj::rdma
