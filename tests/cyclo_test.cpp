// End-to-end tests of the cyclo-join orchestrator: distributed runs must
// produce exactly the matches and checksum of a single-host reference, for
// every algorithm, transport and ring size.
#include "cyclo/cyclo_join.h"

#include <gtest/gtest.h>

#include "join/local_join.h"
#include "join/nested_loops.h"
#include "rel/generator.h"

namespace cj::cyclo {
namespace {

struct Reference {
  std::uint64_t matches;
  std::uint64_t checksum;
};

Reference reference_equi(const rel::Relation& r, const rel::Relation& s) {
  join::JoinResult res = join::local_hash_join(r.tuples(), s.tuples());
  return {res.matches(), res.checksum()};
}

ClusterConfig small_cluster(int hosts, Transport transport = Transport::kRdma) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.cores_per_host = 4;
  cfg.node.buffer_bytes = 64 * 1024;  // small buffers → many chunks → more rotation
  cfg.node.num_buffers = 4;
  cfg.transport = transport;
  return cfg;
}

class CycloRingSizes : public ::testing::TestWithParam<int> {};

TEST_P(CycloRingSizes, HashJoinMatchesLocalReference) {
  const int hosts = GetParam();
  auto r = rel::generate({.rows = 40'000, .key_domain = 9'000, .seed = 7}, "R", 1);
  auto s = rel::generate({.rows = 40'000, .key_domain = 9'000, .seed = 8}, "S", 2);
  const Reference ref = reference_equi(r, s);

  CycloJoin cyclo(small_cluster(hosts), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_EQ(static_cast<int>(report.hosts.size()), hosts);
}

TEST_P(CycloRingSizes, SortMergeJoinMatchesLocalReference) {
  const int hosts = GetParam();
  auto r = rel::generate({.rows = 30'000, .key_domain = 7'000, .seed = 17}, "R", 1);
  auto s = rel::generate({.rows = 30'000, .key_domain = 7'000, .seed = 18}, "S", 2);
  const Reference ref = reference_equi(r, s);

  CycloJoin cyclo(small_cluster(hosts),
                  JoinSpec{.algorithm = Algorithm::kSortMergeJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, CycloRingSizes, ::testing::Values(1, 2, 3, 4, 6));

// The rt backend runs the same protocol as real threads and shared-memory
// wires; results must still equal the local reference exactly. (The full
// sim-vs-rt parity sweep, including skew and crashes, lives in rt_test.)
class CycloRtRingSizes : public ::testing::TestWithParam<int> {};

TEST_P(CycloRtRingSizes, HashJoinOnRtBackendMatchesLocalReference) {
  const int hosts = GetParam();
  auto r = rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 7}, "R", 1);
  auto s = rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 8}, "S", 2);
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = small_cluster(hosts);
  cfg.backend = Backend::kRt;
  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_EQ(static_cast<int>(report.hosts.size()), hosts);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, CycloRtRingSizes, ::testing::Values(1, 2, 4));

TEST(CycloJoinTcp, HashJoinOverTcpTransport) {
  auto r = rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 3}, "R", 1);
  auto s = rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 4}, "S", 2);
  const Reference ref = reference_equi(r, s);

  CycloJoin cyclo(small_cluster(4, Transport::kTcp),
                  JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

TEST(CycloJoinBand, BandJoinMatchesNestedLoopsOracle) {
  auto r = rel::generate({.rows = 4'000, .key_domain = 2'000, .seed = 5}, "R", 1);
  auto s = rel::generate({.rows = 4'000, .key_domain = 2'000, .seed = 6}, "S", 2);
  join::JoinResult oracle;
  join::nested_loops_band_join(r.tuples(), s.tuples(), 5, oracle);

  CycloJoin cyclo(small_cluster(3),
                  JoinSpec{.algorithm = Algorithm::kSortMergeJoin, .band = 5});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, oracle.matches());
  EXPECT_EQ(report.checksum, oracle.checksum());
}

TEST(CycloJoinNestedLoops, ArbitraryPredicate) {
  auto r = rel::generate({.rows = 1'500, .key_domain = 600, .seed = 9}, "R", 1);
  auto s = rel::generate({.rows = 1'500, .key_domain = 600, .seed = 10}, "S", 2);
  const auto pred = [](const rel::Tuple& a, const rel::Tuple& b) {
    return a.key % 97 == b.key % 97;  // neither equi nor band
  };
  join::JoinResult oracle;
  join::nested_loops_join(r.tuples(), s.tuples(), pred, oracle);

  JoinSpec spec;
  spec.algorithm = Algorithm::kNestedLoops;
  spec.predicate = pred;
  CycloJoin cyclo(small_cluster(3), spec);
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, oracle.matches());
  EXPECT_EQ(report.checksum, oracle.checksum());
}

TEST(CycloJoinMaterialize, OutputIsDistributedPartition) {
  auto r = rel::generate({.rows = 3'000, .key_domain = 1'000, .seed = 11}, "R", 1);
  auto s = rel::generate({.rows = 3'000, .key_domain = 1'000, .seed = 12}, "S", 2);
  join::JoinResult oracle(true);
  join::nested_loops_equi_join(r.tuples(), s.tuples(), oracle);

  JoinSpec spec;
  spec.algorithm = Algorithm::kHashJoin;
  spec.materialize = true;
  CycloJoin cyclo(small_cluster(3), spec);
  const RunReport report = cyclo.run(r, s);

  // The union of the per-host outputs is exactly the join result; the
  // stable accessor sizes the distributed partition without touching the
  // tuples.
  std::uint64_t total = 0;
  const std::vector<OutputFragment> frags = report.output_fragments();
  ASSERT_EQ(frags.size(), report.host_results.size());
  for (std::size_t i = 0; i < frags.size(); ++i) {
    EXPECT_EQ(frags[i].rows, report.host_results[i].output().size());
    EXPECT_EQ(frags[i].bytes, frags[i].rows * sizeof(join::OutTuple));
    total += frags[i].rows;
  }
  EXPECT_EQ(total, oracle.matches());
  EXPECT_EQ(report.checksum, oracle.checksum());
}

TEST(CycloJoinStats, SaneTimingAndTransportStats) {
  auto r = rel::generate({.rows = 50'000, .key_domain = 20'000, .seed = 13}, "R", 1);
  auto s = rel::generate({.rows = 50'000, .key_domain = 20'000, .seed = 14}, "S", 2);

  CycloJoin cyclo(small_cluster(4), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_GT(report.setup_wall, 0);
  EXPECT_GT(report.join_wall, 0);
  EXPECT_GE(report.total_wall, report.join_wall);
  EXPECT_GT(report.bytes_on_wire, 0u);
  for (const auto& host : report.hosts) {
    EXPECT_GT(host.setup, 0);
    EXPECT_GT(host.join_phase, 0);
    EXPECT_GE(host.cpu_load_join, 0.0);
    EXPECT_LE(host.cpu_load_join, 1.0 + 1e-9);
    EXPECT_GT(host.chunks_processed, 0u);
  }
}

}  // namespace
}  // namespace cj::cyclo
