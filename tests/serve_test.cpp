// Tests for the multi-query serving layer (src/serve): admission control,
// weighted fair-share wave scheduling, per-query lifecycle/SLO accounting,
// and exactness — every retired query's result must be byte-identical to a
// solo run of the same join.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "cyclo/cyclo_join.h"
#include "join/local_join.h"
#include "rel/generator.h"
#include "serve/scheduler.h"

namespace cj::serve {
namespace {

using cyclo::Algorithm;
using cyclo::ClusterConfig;
using cyclo::CycloJoin;
using cyclo::JoinSpec;
using cyclo::RunReport;

ServeConfig serve_config(int hosts = 3, int inflight = 4) {
  ServeConfig cfg;
  cfg.cluster.num_hosts = hosts;
  cfg.cluster.node.buffer_bytes = 32 * 1024;
  cfg.spec = JoinSpec{.algorithm = Algorithm::kHashJoin};
  cfg.max_inflight = inflight;
  return cfg;
}

rel::Relation make_r() {
  return rel::generate({.rows = 12'000, .key_domain = 3'000, .seed = 31}, "R", 1);
}

/// A family of distinguishable stationary relations.
rel::Relation make_s(int which) {
  return rel::generate({.rows = 8'000 + 1'000 * which,
                        .key_domain = 3'000,
                        .seed = 40 + static_cast<std::uint64_t>(which)},
                       "S" + std::to_string(which), 2);
}

QuerySpec query(const rel::Relation& s, std::string tenant = "default",
                double weight = 1.0) {
  QuerySpec spec;
  spec.stationary = &s;
  spec.tenant = std::move(tenant);
  spec.weight = weight;
  return spec;
}

// ----- lifecycle -----------------------------------------------------------

TEST(Serve, SingleQueryRetiresWithExactResult) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config());
  const QueryId id = scheduler.submit(query(s), 0);
  EXPECT_EQ(scheduler.phase(id), QueryPhase::kQueued);

  const ServeReport report = scheduler.drain(r);

  const auto reference = join::local_hash_join(r.tuples(), s.tuples());
  const QueryRecord& record = report.query(id);
  EXPECT_EQ(record.phase, QueryPhase::kRetired);
  EXPECT_EQ(record.result.matches, reference.matches());
  EXPECT_EQ(record.result.checksum, reference.checksum());
  EXPECT_EQ(record.wave, 0);
  EXPECT_GT(record.latency(), 0);
  EXPECT_EQ(record.queue_wait(), 0);
  EXPECT_EQ(report.waves, 1);
}

TEST(Serve, ResultsMatchSoloRunsByteForByte) {
  auto r = make_r();
  std::vector<rel::Relation> tables;
  for (int i = 0; i < 3; ++i) tables.push_back(make_s(i));

  ServeConfig cfg = serve_config(3, 2);  // forces multi-wave interleaving
  QueryScheduler scheduler(cfg);
  std::vector<QueryId> ids;
  for (int q = 0; q < 6; ++q) {
    ids.push_back(scheduler.submit(
        query(tables[static_cast<std::size_t>(q % 3)], q % 2 ? "a" : "b"),
        static_cast<SimTime>(q) * kMicrosecond));
  }
  const ServeReport report = scheduler.drain(r);

  CycloJoin solo(cfg.cluster, cfg.spec);
  for (int q = 0; q < 6; ++q) {
    const RunReport ref = solo.run(r, tables[static_cast<std::size_t>(q % 3)]);
    const QueryRecord& record = report.query(ids[static_cast<std::size_t>(q)]);
    EXPECT_EQ(record.phase, QueryPhase::kRetired) << "query " << q;
    EXPECT_EQ(record.result.matches, ref.matches) << "query " << q;
    EXPECT_EQ(record.result.checksum, ref.checksum) << "query " << q;
  }
}

TEST(Serve, EveryAdmittedQueryRetiresUnderRandomizedMixes) {
  auto r = make_r();
  std::vector<rel::Relation> tables;
  for (int i = 0; i < 3; ++i) tables.push_back(make_s(i));
  const char* tenants[] = {"alpha", "beta", "gamma"};

  for (std::uint64_t seed : {11u, 12u, 13u}) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pick(0, 2);
    std::uniform_real_distribution<double> weight(0.5, 4.0);
    std::uniform_int_distribution<SimTime> gap(0, 2 * kMicrosecond);

    QueryScheduler scheduler(serve_config(3, 3));
    SimTime arrival = 0;
    std::vector<QueryId> ids;
    for (int q = 0; q < 12; ++q) {
      arrival += gap(rng);
      ids.push_back(scheduler.submit(
          query(tables[static_cast<std::size_t>(pick(rng))],
                tenants[pick(rng)], weight(rng)),
          arrival));
    }
    const ServeReport report = scheduler.drain(r);

    // No starvation: every submitted query retired (none rejected at this
    // depth, none cancelled).
    for (const QueryId id : ids) {
      EXPECT_EQ(report.query(id).phase, QueryPhase::kRetired)
          << "seed " << seed << " query " << id;
      EXPECT_GE(report.query(id).latency(), 0);
    }
    EXPECT_EQ(report.metrics.counters.at("serve.retired"), 12);
  }
}

TEST(Serve, DrainIsDeterministic) {
  auto r = make_r();
  auto s0 = make_s(0);
  auto s1 = make_s(1);

  auto run_once = [&] {
    QueryScheduler scheduler(serve_config(3, 2));
    for (int q = 0; q < 6; ++q) {
      scheduler.submit(query(q % 2 ? s1 : s0, q % 2 ? "a" : "b", q % 2 ? 2.0 : 1.0),
                       static_cast<SimTime>(q) * kMicrosecond);
    }
    return scheduler.drain(r);
  };

  // Scheduling decisions and results are exactly reproducible. (Virtual
  // timestamps are not compared: the sim engine charges join kernels their
  // measured execution time, which varies run to run.)
  const ServeReport first = run_once();
  const ServeReport second = run_once();
  ASSERT_EQ(first.queries.size(), second.queries.size());
  for (std::size_t q = 0; q < first.queries.size(); ++q) {
    EXPECT_EQ(first.queries[q].phase, second.queries[q].phase) << q;
    EXPECT_EQ(first.queries[q].wave, second.queries[q].wave) << q;
    EXPECT_EQ(first.queries[q].result.matches, second.queries[q].result.matches);
    EXPECT_EQ(first.queries[q].result.checksum, second.queries[q].result.checksum);
  }
  EXPECT_EQ(first.waves, second.waves);
  EXPECT_EQ(first.metrics.counters.at("serve.retired"),
            second.metrics.counters.at("serve.retired"));
}

// ----- fairness ------------------------------------------------------------

TEST(Serve, WeightedTenantsSplitWaveSlotsByWeight) {
  auto r = make_r();
  auto s = make_s(0);

  QueryScheduler scheduler(serve_config(3, 4));
  std::vector<QueryId> heavy, light;
  for (int q = 0; q < 16; ++q) heavy.push_back(scheduler.submit(query(s, "a-heavy", 3.0), 0));
  for (int q = 0; q < 16; ++q) light.push_back(scheduler.submit(query(s, "b-light", 1.0), 0));
  const ServeReport report = scheduler.drain(r);

  // While both tenants are backlogged (waves 0..4) stride scheduling gives
  // the weight-3 tenant exactly 3 of every 4 slots.
  for (int wave = 0; wave < 5; ++wave) {
    int heavy_slots = 0;
    int light_slots = 0;
    for (const QueryId id : heavy) heavy_slots += report.query(id).wave == wave;
    for (const QueryId id : light) light_slots += report.query(id).wave == wave;
    EXPECT_EQ(heavy_slots, 3) << "wave " << wave;
    EXPECT_EQ(light_slots, 1) << "wave " << wave;
  }

  // Busy-time share over the backlogged window tracks the 3:1 weights.
  SimDuration heavy_busy = 0;
  SimDuration total_busy = 0;
  for (const QueryId id : heavy) {
    if (report.query(id).wave < 5) heavy_busy += report.query(id).busy;
  }
  for (const QueryRecord& record : report.queries) {
    if (record.wave >= 0 && record.wave < 5) total_busy += record.busy;
  }
  ASSERT_GT(total_busy, 0);
  const double share =
      static_cast<double>(heavy_busy) / static_cast<double>(total_busy);
  EXPECT_NEAR(share, 0.75, 0.15);
}

TEST(Serve, FifoWithinOneTenant) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(3, 2));
  std::vector<QueryId> ids;
  for (int q = 0; q < 6; ++q) ids.push_back(scheduler.submit(query(s), 0));
  const ServeReport report = scheduler.drain(r);

  for (std::size_t q = 0; q < ids.size(); ++q) {
    EXPECT_EQ(report.query(ids[q]).wave, static_cast<int>(q / 2)) << q;
  }
}

TEST(Serve, LateTenantIsNotStarved) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(3, 2));
  for (int q = 0; q < 8; ++q) scheduler.submit(query(s, "early"), 0);
  const QueryId late = scheduler.submit(query(s, "late"), 1);
  const ServeReport report = scheduler.drain(r);

  EXPECT_EQ(report.query(late).phase, QueryPhase::kRetired);
  // The newcomer's stride pass starts at the running floor, so it wins a
  // slot in the very next wave rather than waiting out the backlog.
  EXPECT_LE(report.query(late).wave, 1);
}

TEST(Serve, ShareByTenantSumsToOne) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(3, 2));
  for (int q = 0; q < 4; ++q) scheduler.submit(query(s, q % 2 ? "a" : "b"), 0);
  const ServeReport report = scheduler.drain(r);

  double total = 0;
  for (const auto& [tenant, share] : report.share_by_tenant) {
    EXPECT_GT(share, 0.0) << tenant;
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(report.metrics.gauges.count("serve.share.a") != 0U);
  EXPECT_TRUE(report.metrics.gauges.count("serve.share.b") != 0U);
}

// ----- admission control & cancellation ------------------------------------

TEST(Serve, AdmissionRejectsBeyondQueueDepth) {
  auto r = make_r();
  auto s = make_s(0);
  ServeConfig cfg = serve_config();
  cfg.max_queue_depth = 2;
  QueryScheduler scheduler(cfg);

  const QueryId a = scheduler.submit(query(s), 0);
  const QueryId b = scheduler.submit(query(s), 0);
  const QueryId c = scheduler.submit(query(s), 0);
  EXPECT_EQ(scheduler.phase(a), QueryPhase::kQueued);
  EXPECT_EQ(scheduler.phase(b), QueryPhase::kQueued);
  EXPECT_EQ(scheduler.phase(c), QueryPhase::kRejected);
  EXPECT_EQ(scheduler.queue_depth(), 2u);

  const ServeReport report = scheduler.drain(r);
  EXPECT_EQ(report.query(c).phase, QueryPhase::kRejected);
  EXPECT_EQ(report.metrics.counters.at("serve.rejected"), 1);
  EXPECT_EQ(report.metrics.counters.at("serve.retired"), 2);

  // Capacity frees up after the drain: new submissions are admitted.
  const QueryId d = scheduler.submit(query(s), report.end_time);
  EXPECT_EQ(scheduler.phase(d), QueryPhase::kQueued);
}

TEST(Serve, CancelQueuedQueryNeverRuns) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config());
  const QueryId keep = scheduler.submit(query(s), 0);
  const QueryId gone = scheduler.submit(query(s), 0);

  EXPECT_TRUE(scheduler.cancel(gone));
  EXPECT_FALSE(scheduler.cancel(gone));  // already cancelled
  const ServeReport report = scheduler.drain(r);

  EXPECT_EQ(report.query(keep).phase, QueryPhase::kRetired);
  EXPECT_EQ(report.query(gone).phase, QueryPhase::kCancelled);
  EXPECT_EQ(report.query(gone).wave, -1);
  EXPECT_EQ(report.metrics.counters.at("serve.cancelled"), 1);
  EXPECT_FALSE(scheduler.cancel(keep));  // retired queries cannot cancel
}

TEST(Serve, DeadlineExpiresQueriesStillQueued) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(3, 1));  // one query per wave
  const QueryId first = scheduler.submit(query(s), 0);
  const QueryId second = scheduler.submit(query(s), 0);
  QuerySpec expiring = query(s);
  expiring.cancel_at = 1;  // any wave after the first exceeds 1 ns
  const QueryId third = scheduler.submit(expiring, 0);

  const ServeReport report = scheduler.drain(r);
  EXPECT_EQ(report.query(first).phase, QueryPhase::kRetired);
  EXPECT_EQ(report.query(second).phase, QueryPhase::kRetired);
  EXPECT_EQ(report.query(third).phase, QueryPhase::kCancelled);
  EXPECT_EQ(report.metrics.counters.at("serve.cancelled"), 1);
}

TEST(Serve, CountersAreConsistent) {
  auto r = make_r();
  auto s = make_s(0);
  ServeConfig cfg = serve_config();
  cfg.max_queue_depth = 3;
  QueryScheduler scheduler(cfg);
  for (int q = 0; q < 5; ++q) scheduler.submit(query(s), 0);  // 2 rejected
  scheduler.cancel(0);
  const ServeReport report = scheduler.drain(r);

  const auto& counters = report.metrics.counters;
  EXPECT_EQ(counters.at("serve.submitted"),
            counters.at("serve.retired") + counters.at("serve.rejected") +
                counters.at("serve.cancelled"));
  EXPECT_EQ(counters.at("serve.admitted"), counters.at("serve.retired"));
}

// ----- waves, arrivals & the serve clock -----------------------------------

TEST(Serve, WaveWidthIsBoundedByMaxInflight) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(3, 3));
  for (int q = 0; q < 10; ++q) scheduler.submit(query(s), 0);
  const ServeReport report = scheduler.drain(r);

  std::map<int, int> width;
  for (const QueryRecord& record : report.queries) ++width[record.wave];
  EXPECT_EQ(report.waves, 4);  // 3 + 3 + 3 + 1
  for (const auto& [wave, count] : width) {
    EXPECT_LE(count, 3) << "wave " << wave;
  }
}

TEST(Serve, LateArrivalWaitsForItsOwnWave) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(3, 2));
  const QueryId early = scheduler.submit(query(s), 0);
  const SimTime much_later = 10 * kSecond;  // beyond any wave's service time
  const QueryId late = scheduler.submit(query(s), much_later);

  const ServeReport report = scheduler.drain(r);
  EXPECT_EQ(report.waves, 2);
  EXPECT_EQ(report.query(early).wave, 0);
  EXPECT_EQ(report.query(late).wave, 1);
  // The serve clock idles until the late query arrives.
  EXPECT_EQ(report.query(late).started_at, much_later);
  EXPECT_EQ(report.query(late).queue_wait(), 0);
}

TEST(Serve, EmptyDrainIsANoOp) {
  auto r = make_r();
  QueryScheduler scheduler(serve_config());
  const ServeReport report = scheduler.drain(r);
  EXPECT_EQ(report.waves, 0);
  EXPECT_TRUE(report.queries.empty());
  EXPECT_EQ(report.bytes_on_wire, 0u);
}

TEST(Serve, SingleHostClusterServes) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(1, 2));
  const QueryId a = scheduler.submit(query(s), 0);
  const QueryId b = scheduler.submit(query(s), 0);
  const ServeReport report = scheduler.drain(r);

  const auto reference = join::local_hash_join(r.tuples(), s.tuples());
  EXPECT_EQ(report.query(a).result.matches, reference.matches());
  EXPECT_EQ(report.query(b).result.matches, reference.matches());
  EXPECT_EQ(report.bytes_on_wire, 0u);  // no ring neighbors, no wire
}

// ----- SLOs, histograms & per-query accounting -----------------------------

TEST(Serve, LatencyAndQueueWaitHistogramsArePopulated) {
  auto r = make_r();
  auto s = make_s(0);
  QueryScheduler scheduler(serve_config(3, 2));
  for (int q = 0; q < 4; ++q) scheduler.submit(query(s), 0);
  const ServeReport report = scheduler.drain(r);

  const auto& latency = report.metrics.histograms.at("serve.latency_ns");
  const auto& wait = report.metrics.histograms.at("serve.queue_wait_ns");
  EXPECT_EQ(latency.count, 4u);
  EXPECT_EQ(wait.count, 4u);
  EXPECT_GT(latency.p99, 0);
  // Wave-0 queries depart immediately; wave-1 queries waited a full wave.
  EXPECT_EQ(wait.min, 0);
  EXPECT_GT(wait.max, 0);
  // Latency dominates queue wait (it includes service).
  EXPECT_GE(latency.max, wait.max);
}

TEST(Serve, SloViolationsAreFlaggedAndCounted) {
  auto r = make_r();
  auto s = make_s(0);
  ServeConfig cfg = serve_config();
  cfg.slo_target = 1;  // 1 ns: every real wave violates it
  QueryScheduler strict(cfg);
  for (int q = 0; q < 3; ++q) strict.submit(query(s), 0);
  const ServeReport violated = strict.drain(r);
  EXPECT_EQ(violated.metrics.counters.at("serve.slo_violations"), 3);
  for (const QueryRecord& record : violated.queries) {
    EXPECT_TRUE(record.slo_violated);
  }

  cfg.slo_target = 0;  // accounting off
  QueryScheduler relaxed(cfg);
  for (int q = 0; q < 3; ++q) relaxed.submit(query(s), 0);
  const ServeReport clean = relaxed.drain(r);
  EXPECT_EQ(clean.metrics.counters.count("serve.slo_violations"), 0u);
  for (const QueryRecord& record : clean.queries) {
    EXPECT_FALSE(record.slo_violated);
  }
}

TEST(Serve, PerQueryBusyTimeIsAttributed) {
  auto r = make_r();
  auto s0 = make_s(0);
  auto s1 = make_s(3);  // distinctly larger stationary side
  QueryScheduler scheduler(serve_config(3, 2));
  const QueryId small = scheduler.submit(query(s0, "a"), 0);
  const QueryId big = scheduler.submit(query(s1, "b"), 0);
  const ServeReport report = scheduler.drain(r);

  EXPECT_GT(report.query(small).busy, 0);
  EXPECT_GT(report.query(big).busy, 0);
  EXPECT_TRUE(report.metrics.counters.count("busy.q0") != 0U);
  EXPECT_TRUE(report.metrics.counters.count("busy.q1") != 0U);

  SimDuration from_tenants = 0;
  for (const auto& [tenant, busy] : report.busy_by_tenant) from_tenants += busy;
  EXPECT_EQ(from_tenants, report.query(small).busy + report.query(big).busy);
}

// ----- the sharing argument ------------------------------------------------

TEST(Serve, SharedWaveMovesFewerBytesThanSoloRuns) {
  auto r = make_r();
  std::vector<rel::Relation> tables;
  for (int i = 0; i < 4; ++i) tables.push_back(make_s(i));

  ServeConfig cfg = serve_config(3, 4);
  QueryScheduler scheduler(cfg);
  for (int q = 0; q < 4; ++q) {
    scheduler.submit(query(tables[static_cast<std::size_t>(q)]), 0);
  }
  const ServeReport report = scheduler.drain(r);
  ASSERT_EQ(report.waves, 1);

  CycloJoin solo(cfg.cluster, cfg.spec);
  const std::uint64_t solo_bytes = solo.run(r, tables[0]).bytes_on_wire;
  // One wave of 4 queries pays the rotation once, not 4 times.
  EXPECT_LT(report.bytes_on_wire, 4 * solo_bytes);
  EXPECT_LT(static_cast<double>(report.bytes_on_wire),
            static_cast<double>(solo_bytes) * 1.1);
}

// ----- faults through the serving layer ------------------------------------

TEST(ServeFault, CrashDuringWaveRecoversExactResults) {
  auto r = make_r();
  auto s0 = make_s(0);
  auto s1 = make_s(1);

  ServeConfig cfg = serve_config(4, 2);
  cfg.cluster.cores_per_host = 2;
  cfg.cluster.fault.seed = 9;
  cfg.cluster.fault.crashes.push_back({.host = 1, .at = 2 * kMillisecond});
  cfg.cluster.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.cluster.node.resilience.replicate = true;

  QueryScheduler scheduler(cfg);
  const QueryId a = scheduler.submit(query(s0, "a"), 0);
  const QueryId b = scheduler.submit(query(s1, "b"), 0);
  const ServeReport report = scheduler.drain(r);

  const auto ref0 = join::local_hash_join(r.tuples(), s0.tuples());
  const auto ref1 = join::local_hash_join(r.tuples(), s1.tuples());
  EXPECT_EQ(report.query(a).phase, QueryPhase::kRetired);
  EXPECT_EQ(report.query(b).phase, QueryPhase::kRetired);
  EXPECT_EQ(report.query(a).result.matches, ref0.matches());
  EXPECT_EQ(report.query(a).result.checksum, ref0.checksum());
  EXPECT_EQ(report.query(b).result.matches, ref1.matches());
  EXPECT_EQ(report.query(b).result.checksum, ref1.checksum());
}

// Randomized multi-query chaos soak (CI runs this with a randomized base
// seed under TSan; see also FaultRecovery.ChaosSoakExactUnderRandomSeeds):
// seeded drop/corrupt/crash combinations with replication on must leave
// every served query with the exact answer.
TEST(ServeChaos, ChaosSoakMultiQueryServing) {
  const char* base_env = std::getenv("CHAOS_SOAK_BASE");
  const char* iters_env = std::getenv("CHAOS_SOAK");
  const std::uint64_t base =
      base_env != nullptr ? std::strtoull(base_env, nullptr, 10) : 200;
  const int iters = iters_env != nullptr ? std::atoi(iters_env) : 1;

  auto r = make_r();
  auto s0 = make_s(0);
  auto s1 = make_s(1);
  const auto ref0 = join::local_hash_join(r.tuples(), s0.tuples());
  const auto ref1 = join::local_hash_join(r.tuples(), s1.tuples());

  for (int k = 0; k < iters; ++k) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(k);
    ServeConfig cfg = serve_config(4, 2);
    cfg.cluster.cores_per_host = 2;
    cfg.cluster.fault.seed = seed;
    cfg.cluster.fault.link.drop_prob = 0.02;
    cfg.cluster.fault.link.corrupt_prob = 0.02;
    cfg.cluster.fault.crashes.push_back(
        {.host = static_cast<int>(seed % 4),
         .at = static_cast<SimDuration>(seed % 7) * kMillisecond});
    cfg.cluster.node.resilience.ack_timeout = 20 * kMillisecond;
    cfg.cluster.node.resilience.replicate = true;

    // Two waves: each re-applies the fault plan, so every wave crashes and
    // recovers independently.
    QueryScheduler scheduler(cfg);
    const QueryId q0 = scheduler.submit(query(s0, "a"), 0);
    const QueryId q1 = scheduler.submit(query(s1, "b"), 0);
    const QueryId q2 = scheduler.submit(query(s0, "a"), 0);
    const QueryId q3 = scheduler.submit(query(s1, "b"), 0);
    const ServeReport report = scheduler.drain(r);

    for (const QueryRecord& record : report.queries) {
      EXPECT_EQ(record.phase, QueryPhase::kRetired)
          << "seed " << seed << " query " << record.id;
    }
    EXPECT_EQ(report.query(q0).result.matches, ref0.matches()) << "seed " << seed;
    EXPECT_EQ(report.query(q1).result.matches, ref1.matches()) << "seed " << seed;
    EXPECT_EQ(report.query(q2).result.checksum, ref0.checksum()) << "seed " << seed;
    EXPECT_EQ(report.query(q3).result.checksum, ref1.checksum()) << "seed " << seed;
  }
}

// ----- rt backend ----------------------------------------------------------

TEST(ServeRt, RtBackendRetiresAllWithSimParity) {
  auto r = rel::generate({.rows = 6'000, .key_domain = 1'500, .seed = 51}, "R", 1);
  auto s0 = rel::generate({.rows = 4'000, .key_domain = 1'500, .seed = 52}, "S0", 2);
  auto s1 = rel::generate({.rows = 3'000, .key_domain = 1'500, .seed = 53}, "S1", 3);

  auto serve_on = [&](cyclo::Backend backend) {
    ServeConfig cfg = serve_config(3, 2);
    cfg.cluster.backend = backend;
    cfg.cluster.cores_per_host = 2;
    QueryScheduler scheduler(cfg);
    scheduler.submit(query(s0, "a"), 0);
    scheduler.submit(query(s1, "b"), 0);
    scheduler.submit(query(s0, "a"), 0);
    return scheduler.drain(r);
  };

  const ServeReport sim = serve_on(cyclo::Backend::kSim);
  const ServeReport rt = serve_on(cyclo::Backend::kRt);

  ASSERT_EQ(sim.queries.size(), rt.queries.size());
  for (std::size_t q = 0; q < sim.queries.size(); ++q) {
    EXPECT_EQ(rt.queries[q].phase, QueryPhase::kRetired) << q;
    EXPECT_EQ(sim.queries[q].result.matches, rt.queries[q].result.matches) << q;
    EXPECT_EQ(sim.queries[q].result.checksum, rt.queries[q].result.checksum) << q;
    EXPECT_EQ(sim.queries[q].wave, rt.queries[q].wave) << q;
    EXPECT_GT(rt.queries[q].busy, 0) << q;
  }
  EXPECT_GT(rt.metrics.histograms.at("serve.latency_ns").count, 0u);
}

}  // namespace
}  // namespace cj::serve
