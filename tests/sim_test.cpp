// Unit tests for the discrete-event engine: virtual clock, determinism,
// channels, events, semaphores, core pools and when_all.
#include <gtest/gtest.h>

#include <vector>

#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/when_all.h"

namespace cj::sim {
namespace {

TEST(Engine, TimeStartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
}

TEST(Engine, SleepAdvancesVirtualTime) {
  Engine e;
  SimTime observed = -1;
  e.spawn(
      [](Engine& e, SimTime* out) -> Task<void> {
        co_await e.sleep(5 * kMillisecond);
        *out = e.now();
      }(e, &observed),
      "sleeper");
  e.run();
  e.check_all_complete();
  EXPECT_EQ(observed, 5 * kMillisecond);
  EXPECT_EQ(e.now(), 5 * kMillisecond);
}

TEST(Engine, EventsAtSameInstantRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.spawn(
        [](Engine& e, std::vector<int>* order, int id) -> Task<void> {
          co_await e.sleep(kMicrosecond);  // all wake at the same instant
          order->push_back(id);
        }(e, &order, i),
        "p");
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<std::pair<int, SimTime>> log;
    for (int i = 0; i < 4; ++i) {
      e.spawn(
          [](Engine& e, std::vector<std::pair<int, SimTime>>* log,
             int id) -> Task<void> {
            for (int k = 0; k < 3; ++k) {
              co_await e.sleep((id + 1) * kMicrosecond);
              log->push_back({id, e.now()});
            }
          }(e, &log, i),
          "p");
    }
    e.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int ticks = 0;
  e.spawn(
      [](Engine& e, int* ticks) -> Task<void> {
        for (int i = 0; i < 100; ++i) {
          co_await e.sleep(kMillisecond);
          ++*ticks;
        }
      }(e, &ticks),
      "ticker");
  EXPECT_FALSE(e.run_until(10 * kMillisecond + 1));
  EXPECT_EQ(ticks, 10);
  EXPECT_TRUE(e.run_until(kSecond));
  EXPECT_EQ(ticks, 100);
}

TEST(Engine, NestedTaskCompositionTransfersValues) {
  Engine e;
  int result = 0;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.sleep(kMicrosecond);
    co_return 21;
  };
  e.spawn(
      [](Engine& e, auto inner, int* out) -> Task<void> {
        const int a = co_await inner(e);
        const int b = co_await inner(e);
        *out = a + b;
      }(e, inner, &result),
      "outer");
  e.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(e.now(), 2 * kMicrosecond);
}

// ----------------------------------------------------------------- Event

TEST(Event, WaitersResumeOnSet) {
  Engine e;
  Event ev(e);
  std::vector<int> log;
  for (int i = 0; i < 3; ++i) {
    e.spawn(
        [](Event& ev, std::vector<int>* log, int id) -> Task<void> {
          co_await ev.wait();
          log->push_back(id);
        }(ev, &log, i),
        "waiter");
  }
  e.spawn(
      [](Engine& e, Event& ev) -> Task<void> {
        co_await e.sleep(kMillisecond);
        ev.set();
      }(e, ev),
      "setter");
  e.run();
  e.check_all_complete();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

TEST(Event, WaitAfterSetIsImmediate) {
  Engine e;
  Event ev(e);
  ev.set();
  bool ran = false;
  e.spawn(
      [](Event& ev, bool* ran) -> Task<void> {
        co_await ev.wait();
        *ran = true;
      }(ev, &ran),
      "late-waiter");
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 0);
}

// ------------------------------------------------------------- Semaphore

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore sem(e, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    e.spawn(
        [](Engine& e, Semaphore& sem, int* concurrent, int* peak) -> Task<void> {
          co_await sem.acquire();
          *peak = std::max(*peak, ++*concurrent);
          co_await e.sleep(kMillisecond);
          --*concurrent;
          sem.release();
        }(e, sem, &concurrent, &peak),
        "worker");
  }
  e.run();
  e.check_all_complete();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(e.now(), 3 * kMillisecond);  // 6 workers, 2 at a time
}

TEST(Semaphore, FifoWakeup) {
  Engine e;
  Semaphore sem(e, 0);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    e.spawn(
        [](Semaphore& sem, std::vector<int>* order, int id) -> Task<void> {
          co_await sem.acquire();
          order->push_back(id);
        }(sem, &order, i),
        "acq");
  }
  e.spawn(
      [](Engine& e, Semaphore& sem) -> Task<void> {
        for (int i = 0; i < 4; ++i) {
          co_await e.sleep(kMicrosecond);
          sem.release();
        }
      }(e, sem),
      "rel");
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --------------------------------------------------------------- Channel

TEST(Channel, PushPopFifo) {
  Engine e;
  Channel<int> ch(e, 4);
  std::vector<int> got;
  e.spawn(
      [](Channel<int>& ch) -> Task<void> {
        for (int i = 0; i < 10; ++i) co_await ch.push(i);
        ch.close();
      }(ch),
      "producer");
  e.spawn(
      [](Channel<int>& ch, std::vector<int>* got) -> Task<void> {
        while (auto v = co_await ch.pop()) got->push_back(*v);
      }(ch, &got),
      "consumer");
  e.run();
  e.check_all_complete();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Channel, BoundedCapacityBlocksProducer) {
  Engine e;
  Channel<int> ch(e, 2);
  SimTime producer_done = 0;
  e.spawn(
      [](Engine& e, Channel<int>& ch, SimTime* done) -> Task<void> {
        for (int i = 0; i < 4; ++i) co_await ch.push(i);
        *done = e.now();
        ch.close();
      }(e, ch, &producer_done),
      "producer");
  e.spawn(
      [](Engine& e, Channel<int>& ch) -> Task<void> {
        while (true) {
          co_await e.sleep(kMillisecond);
          if (!(co_await ch.pop())) break;
        }
      }(e, ch),
      "slow-consumer");
  e.run();
  e.check_all_complete();
  // Producer's 4th push had to wait until the consumer made room.
  EXPECT_GE(producer_done, 2 * kMillisecond);
}

TEST(Channel, TryPushRespectsCapacity) {
  Engine e;
  Channel<int> ch(e, 2);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3));
  EXPECT_EQ(ch.try_pop().value(), 1);
  EXPECT_TRUE(ch.try_push(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, PopOnClosedDrainedReturnsNullopt) {
  Engine e;
  Channel<int> ch(e, 2);
  EXPECT_TRUE(ch.try_push(7));
  ch.close();
  std::vector<int> got;
  bool saw_end = false;
  e.spawn(
      [](Channel<int>& ch, std::vector<int>* got, bool* end) -> Task<void> {
        while (auto v = co_await ch.pop()) got->push_back(*v);
        *end = true;
      }(ch, &got, &saw_end),
      "drain");
  e.run();
  EXPECT_EQ(got, (std::vector<int>{7}));
  EXPECT_TRUE(saw_end);
}

// -------------------------------------------------------------- CorePool

TEST(CorePool, MakespanOfParallelTasks) {
  Engine e;
  CorePool pool(e, 4);
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(pool.consume(kMillisecond, "work"));
  e.spawn(when_all(e, std::move(tasks)), "batch");
  e.run();
  e.check_all_complete();
  EXPECT_EQ(e.now(), 2 * kMillisecond);  // 8 x 1ms on 4 cores
  EXPECT_EQ(pool.busy_total(), 8 * kMillisecond);
}

TEST(CorePool, SingleCoreSerializes) {
  Engine e;
  CorePool pool(e, 1);
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 3; ++i) tasks.push_back(pool.consume(kMillisecond, "work"));
  e.spawn(when_all(e, std::move(tasks)), "batch");
  e.run();
  EXPECT_EQ(e.now(), 3 * kMillisecond);
}

TEST(CorePool, BusyLedgerByTag) {
  Engine e;
  CorePool pool(e, 2);
  e.spawn(pool.consume(3 * kMillisecond, "join"), "a");
  e.spawn(pool.consume(2 * kMillisecond, "tcp-rx"), "b");
  e.run();
  EXPECT_EQ(pool.busy_for("join"), 3 * kMillisecond);
  EXPECT_EQ(pool.busy_for("tcp-rx"), 2 * kMillisecond);
  EXPECT_EQ(pool.busy_for("absent"), 0);
  EXPECT_EQ(pool.busy_total(), 5 * kMillisecond);
}

TEST(CorePool, ContextSwitchCostBilledOnTagChange) {
  Engine e;
  const SimDuration cs = 10 * kMicrosecond;
  CorePool pool(e, 1, cs);
  e.spawn(
      [](CorePool& pool) -> Task<void> {
        co_await pool.consume(kMillisecond, "a");
        co_await pool.consume(kMillisecond, "a");  // same tag: no switch
        co_await pool.consume(kMillisecond, "b");  // switch
        co_await pool.consume(kMillisecond, "a");  // switch
      }(pool),
      "driver");
  e.run();
  EXPECT_EQ(pool.context_switches(), 2u);
  EXPECT_EQ(e.now(), 4 * kMillisecond + 2 * cs);
}

TEST(CorePool, ExecuteMeasuresRealWork) {
  Engine e;
  CorePool pool(e, 1);
  volatile std::uint64_t sink = 0;
  SimDuration measured = 0;
  e.spawn(
      [](CorePool& pool, volatile std::uint64_t* sink,
         SimDuration* measured) -> Task<void> {
        *measured = co_await pool.execute(
            [sink] {
              std::uint64_t acc = 0;
              for (int i = 0; i < 2'000'000; ++i) acc += static_cast<std::uint64_t>(i) * 31;
              *sink = acc;
            },
            "work");
      }(pool, &sink, &measured),
      "driver");
  e.run();
  EXPECT_GT(measured, 0);
  EXPECT_EQ(e.now(), pool.busy_total());
  EXPECT_NE(sink, 0u);
}

TEST(CorePool, CpuScaleMultipliesMeasuredCosts) {
  Engine base_e, scaled_e;
  CorePool base(base_e, 1, 0, 1.0);
  CorePool scaled(scaled_e, 1, 0, 4.0);
  auto burn = [] {
    volatile std::uint64_t acc = 0;
    for (int i = 0; i < 3'000'000; ++i) {
      acc = acc + static_cast<std::uint64_t>(i);  // volatile: not foldable
    }
  };
  base_e.spawn(base.run(burn, "w"), "b");
  scaled_e.spawn(scaled.run(burn, "w"), "s");
  base_e.run();
  scaled_e.run();
  // Identical real work; the scaled pool should report ~4x the virtual time
  // (very loose bounds: single-core VM noise).
  const double ratio = static_cast<double>(scaled_e.now()) /
                       static_cast<double>(base_e.now());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

// -------------------------------------------------------------- when_all

TEST(WhenAll, EmptyCompletesImmediately) {
  Engine e;
  bool done = false;
  e.spawn(
      [](Engine& e, bool* done) -> Task<void> {
        co_await when_all(e, {});
        *done = true;
      }(e, &done),
      "empty");
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), 0);
}

TEST(EngineDeath, DeadlockDumpNamesTheBlockingPrimitive) {
  // A process stuck on a channel nobody feeds: check_all_complete() must
  // name the never-finished process and the primitive it is blocked on
  // before aborting, so hangs in large simulations are diagnosable.
  EXPECT_DEATH(
      {
        Engine e;
        Channel<int> starved(e, 1, "starved-inbox");
        e.spawn(
            [](Channel<int>& ch) -> Task<void> { co_await ch.pop(); }(starved),
            "consumer");
        e.run();
        e.check_all_complete();
      },
      "process 'consumer' never completed.*blocked waiters.*starved-inbox");
}

TEST(WhenAll, RunsConcurrently) {
  Engine e;
  std::vector<Task<void>> tasks;
  auto sleeper = [](Engine& e, SimDuration d) -> Task<void> { co_await e.sleep(d); };
  tasks.push_back(sleeper(e, 3 * kMillisecond));
  tasks.push_back(sleeper(e, 5 * kMillisecond));
  tasks.push_back(sleeper(e, 1 * kMillisecond));
  e.spawn(when_all(e, std::move(tasks)), "batch");
  e.run();
  e.check_all_complete();
  EXPECT_EQ(e.now(), 5 * kMillisecond);  // max, not sum
}

}  // namespace
}  // namespace cj::sim
