// Chaos tests for the fault-injection framework and the failure-resilient
// Data Roundabout. The invariant under test: seeded transient faults never
// change the answer, and a host crash degrades it in exactly the reported
// way — the survivors compute (R \ R_dead) ⋈ (S \ S_dead), nothing else.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "cyclo/cluster.h"
#include "cyclo/cyclo_join.h"
#include "join/local_join.h"
#include "ring/node.h"
#include "obs/analysis.h"
#include "obs/trace.h"
#include "rel/generator.h"
#include "sim/engine.h"
#include "sim/fault.h"

namespace cj::cyclo {
namespace {

struct Reference {
  std::uint64_t matches;
  std::uint64_t checksum;
};

Reference reference_equi(const rel::Relation& r, const rel::Relation& s) {
  join::JoinResult res = join::local_hash_join(r.tuples(), s.tuples());
  return {res.matches(), res.checksum()};
}

/// What the surviving hosts must compute after `dead` fail-stops: the join
/// of both relations with the dead host's fragments removed.
Reference degraded_reference(const rel::Relation& r, const rel::Relation& s,
                             int hosts, int dead) {
  auto r_frags = rel::split_even(r, hosts);
  auto s_frags = rel::split_even(s, hosts);
  std::vector<rel::Tuple> r_alive;
  std::vector<rel::Tuple> s_alive;
  for (int i = 0; i < hosts; ++i) {
    if (i == dead) continue;
    const auto& rf = r_frags[static_cast<std::size_t>(i)];
    const auto& sf = s_frags[static_cast<std::size_t>(i)];
    r_alive.insert(r_alive.end(), rf.tuples().begin(), rf.tuples().end());
    s_alive.insert(s_alive.end(), sf.tuples().begin(), sf.tuples().end());
  }
  join::JoinResult res = join::local_hash_join(r_alive, s_alive);
  return {res.matches(), res.checksum()};
}

ClusterConfig fault_cluster(int hosts, int buffers = 4) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.cores_per_host = 2;
  cfg.node.buffer_bytes = 32 * 1024;  // small buffers → many chunks rotate
  cfg.node.num_buffers = buffers;
  return cfg;
}

rel::Relation make_r() {
  return rel::generate({.rows = 12'000, .key_domain = 3'000, .seed = 21}, "R", 1);
}
rel::Relation make_s() {
  return rel::generate({.rows = 12'000, .key_domain = 3'000, .seed = 22}, "S", 2);
}

// ----- injector unit behavior ----------------------------------------------

TEST(FaultInjector, VerdictStreamIsDeterministicPerSeedAndLink) {
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.link.drop_prob = 0.3;
  plan.link.corrupt_prob = 0.3;

  auto stream = [&](std::uint64_t seed, int link) {
    sim::Engine engine;
    sim::FaultPlan p = plan;
    p.seed = seed;
    sim::FaultInjector injector(engine, p);
    std::vector<int> verdicts;
    for (int i = 0; i < 200; ++i) {
      verdicts.push_back(static_cast<int>(injector.next_message_verdict(link)));
    }
    return verdicts;
  };

  EXPECT_EQ(stream(42, 0), stream(42, 0));  // replay is exact
  EXPECT_NE(stream(42, 0), stream(42, 1));  // links draw independent streams
  EXPECT_NE(stream(42, 0), stream(43, 0));  // seed changes everything
}

TEST(FaultInjector, EmptyPlanNeverInjects) {
  sim::Engine engine;
  sim::FaultInjector injector(engine, sim::FaultPlan{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.next_message_verdict(i % 3),
              sim::FaultInjector::Verdict::kDeliver);
  }
  EXPECT_EQ(injector.counters().messages_dropped, 0u);
  EXPECT_EQ(injector.counters().messages_corrupted, 0u);
}

TEST(FaultInjector, CorruptionFlipsAtLeastOneByte) {
  sim::Engine engine;
  sim::FaultPlan plan;
  plan.link.corrupt_prob = 1.0;
  sim::FaultInjector injector(engine, plan);
  std::vector<std::byte> payload(256, std::byte{0});
  injector.corrupt(payload, /*link_id=*/0);
  bool changed = false;
  for (std::byte b : payload) changed |= (b != std::byte{0});
  EXPECT_TRUE(changed);
}

// ----- fault-free behavior is untouched ------------------------------------

TEST(FaultFramework, EmptyPlanReportsNoFaults) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  CycloJoin cyclo(fault_cluster(4), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_FALSE(report.fault.degraded);
  EXPECT_TRUE(report.fault.crashed_hosts.empty());
  EXPECT_EQ(report.fault.messages_dropped, 0u);
  EXPECT_EQ(report.fault.messages_corrupted, 0u);
  EXPECT_EQ(report.fault.retransmissions, 0u);
  EXPECT_EQ(report.fault.chunks_reinjected, 0u);
  for (const HostStats& host : report.hosts) {
    EXPECT_EQ(host.corrupt_discards, 0u);
    EXPECT_EQ(host.duplicates_skipped, 0u);
    EXPECT_EQ(host.send_failures, 0u);
  }
}

// A non-empty plan that injects nothing still switches the ring into
// resilient mode (frames, acked retires, dynamic termination). The answer —
// and the fault ledger — must be identical to the fault-free run.
TEST(FaultFramework, ResilientModeWithoutFaultsMatchesReference) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
  cfg.node.resilience.ack_timeout = 500 * kMillisecond;  // never fires here

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_FALSE(report.fault.degraded);
  EXPECT_EQ(report.fault.messages_dropped, 0u);
  EXPECT_EQ(report.fault.messages_corrupted, 0u);
  EXPECT_EQ(report.fault.retransmissions, 0u);
  EXPECT_EQ(report.fault.chunks_reinjected, 0u);
  EXPECT_EQ(report.fault.corrupt_discards, 0u);
}

// ----- transient faults ----------------------------------------------------

// Ring size × buffer depth × fault seed. Drops are absorbed by RDMA-level
// retransmission; corruptions by frame checksums + origin re-injection.
// Whatever the interleaving, the answer must be exact and the run must
// terminate (a deadlock aborts via the engine watchdog).
class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(ChaosMatrix, TransientFaultsPreserveTheAnswer) {
  const auto [hosts, buffers, seed] = GetParam();
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(hosts, buffers);
  cfg.fault.seed = seed;
  cfg.fault.link.drop_prob = 0.05;
  cfg.fault.link.corrupt_prob = 0.05;
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_FALSE(report.fault.degraded);
  // Something must actually have gone wrong for this test to mean anything.
  EXPECT_GT(report.fault.messages_dropped + report.fault.messages_corrupted, 0u);
  // Every drop below the retry limit shows up as a retransmission.
  EXPECT_GE(report.fault.retransmissions, report.fault.messages_dropped);
}

INSTANTIATE_TEST_SUITE_P(
    RingsByDepthBySeed, ChaosMatrix,
    ::testing::Combine(::testing::Values(3, 4, 6), ::testing::Values(2, 4),
                       ::testing::Values(1u, 7u, 1234u)));

TEST(FaultFramework, CorruptedChunksAreReinjectedAndDeduplicated) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.seed = 3;
  cfg.fault.link.corrupt_prob = 0.25;  // heavy corruption, no drops
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_GT(report.fault.messages_corrupted, 0u);
  EXPECT_GT(report.fault.corrupt_discards, 0u);
  // A discarded chunk is only ever re-delivered via origin re-injection.
  EXPECT_GT(report.fault.chunks_reinjected, 0u);
  EXPECT_GT(report.fault.chunks_recovered, 0u);
}

// ----- host crashes --------------------------------------------------------

class CrashRings : public ::testing::TestWithParam<int> {};

TEST_P(CrashRings, SurvivorsComputeTheDegradedJoin) {
  const int hosts = GetParam();
  const int dead = hosts / 2;
  auto r = make_r();
  auto s = make_s();
  const Reference ref = degraded_reference(r, s, hosts, dead);

  ClusterConfig cfg = fault_cluster(hosts);
  // Crash at the first instant of the join phase: fully deterministic, and
  // the in-flight recovery machinery still runs for chunks already posted.
  cfg.fault.crashes.push_back({.host = dead, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_TRUE(report.fault.degraded);
  ASSERT_EQ(report.fault.crashed_hosts.size(), 1u);
  EXPECT_EQ(report.fault.crashed_hosts[0], dead);
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);

  // Loss accounting is exact: the dead host's fragments, nothing else.
  auto r_frags = rel::split_even(r, hosts);
  auto s_frags = rel::split_even(s, hosts);
  EXPECT_EQ(report.fault.lost_r_rows,
            r_frags[static_cast<std::size_t>(dead)].rows());
  EXPECT_EQ(report.fault.lost_s_rows,
            s_frags[static_cast<std::size_t>(dead)].rows());

  // The dead host contributes nothing to the result.
  EXPECT_EQ(report.hosts[static_cast<std::size_t>(dead)].matches, 0u);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, CrashRings, ::testing::Values(3, 4, 6));

TEST(FaultFramework, CrashUnderTransientFaults) {
  // The hardest combination: a crash while messages are also being dropped
  // and corrupted. Survivors must still converge on the degraded answer.
  const int hosts = 5;
  const int dead = 1;
  auto r = make_r();
  auto s = make_s();
  const Reference ref = degraded_reference(r, s, hosts, dead);

  ClusterConfig cfg = fault_cluster(hosts);
  cfg.fault.seed = 11;
  cfg.fault.link.drop_prob = 0.03;
  cfg.fault.link.corrupt_prob = 0.03;
  cfg.fault.crashes.push_back({.host = dead, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_TRUE(report.fault.degraded);
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

TEST(FaultFramework, CrashAfterFinishIsANoOp) {
  // A crash scheduled far beyond the run's makespan never fires: the
  // termination detector wins and the result is the full join.
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(3);
  cfg.fault.crashes.push_back({.host = 1, .at = 3600LL * 1'000'000'000LL});
  cfg.node.resilience.ack_timeout = 500 * kMillisecond;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_FALSE(report.fault.degraded);
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

TEST(FaultFramework, SlowdownDelaysButDoesNotChangeTheAnswer) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(3);
  cfg.fault.slowdowns.push_back({.host = 2, .at = 0, .factor = 4.0});
  cfg.node.resilience.ack_timeout = 500 * kMillisecond;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_FALSE(report.fault.degraded);
}

// ----- trace coverage of injections ----------------------------------------

std::size_t count_instants(const obs::Tracer& t, std::string_view name) {
  const std::uint32_t id = t.find_name(name);
  if (id == obs::Tracer::kNoName) return 0;
  std::size_t count = 0;
  for (const obs::TraceEvent& e : t.events()) {
    if (e.kind == obs::EventKind::kInstant && e.name == id) ++count;
  }
  return count;
}

// Every injected fault leaves exactly one "fault.*" instant on the global
// trace track, so a trace is a complete audit log of what the plan did.
TEST(FaultTrace, DropAndCorruptInstantsMatchTheLedger) {
  auto r = make_r();
  auto s = make_s();

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.seed = 7;
  cfg.fault.link.drop_prob = 0.05;
  cfg.fault.link.corrupt_prob = 0.05;
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.trace.enabled = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);
  ASSERT_NE(report.trace, nullptr);
  const obs::Tracer& t = *report.trace;

  EXPECT_GT(report.fault.messages_dropped + report.fault.messages_corrupted, 0u);
  EXPECT_EQ(count_instants(t, "fault.drop"), report.fault.messages_dropped);
  EXPECT_EQ(count_instants(t, "fault.corrupt"), report.fault.messages_corrupted);
  EXPECT_EQ(count_instants(t, "rdma.rnr"), report.fault.rnr_retries);
  // The metrics snapshot mirrors the same ledger.
  EXPECT_EQ(report.metrics.counters.at("messages_dropped"),
            static_cast<std::int64_t>(report.fault.messages_dropped));
  EXPECT_EQ(report.metrics.counters.at("messages_corrupted"),
            static_cast<std::int64_t>(report.fault.messages_corrupted));
}

TEST(FaultTrace, CrashAndSpliceEmitOneInstantEach) {
  const int hosts = 4;
  const int dead = 2;
  auto r = make_r();
  auto s = make_s();

  ClusterConfig cfg = fault_cluster(hosts);
  cfg.fault.crashes.push_back({.host = dead, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.trace.enabled = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);
  ASSERT_NE(report.trace, nullptr);
  const obs::Tracer& t = *report.trace;

  EXPECT_EQ(count_instants(t, "fault.crash"), 1u);
  EXPECT_EQ(count_instants(t, "fault.splice"), 1u);
  for (const obs::TraceEvent& e : t.events()) {
    if (e.kind != obs::EventKind::kInstant) continue;
    const std::string_view name = t.name(e.name);
    if (name == "fault.crash" || name == "fault.splice") {
      EXPECT_EQ(e.host, obs::kGlobalHost);  // cluster-global track
      EXPECT_EQ(e.arg, dead);               // names the victim
    }
  }
}

TEST(FaultTrace, SlowdownEmitsOneInstant) {
  auto r = make_r();
  auto s = make_s();

  ClusterConfig cfg = fault_cluster(3);
  cfg.fault.slowdowns.push_back({.host = 2, .at = 0, .factor = 2.0});
  cfg.node.resilience.ack_timeout = 500 * kMillisecond;
  cfg.trace.enabled = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);
  ASSERT_NE(report.trace, nullptr);
  EXPECT_EQ(count_instants(*report.trace, "fault.slowdown"), 1u);
}

// A dropped delivery forces an RDMA-level retry: the backoff shows up as an
// "rdma.retry" span nested (depth + 1) inside its owning "rdma.send" span
// on the same queue-pair track.
TEST(FaultTrace, RetrySpansNestInsideTheirSendSpans) {
  auto r = make_r();
  auto s = make_s();

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.seed = 9;
  cfg.fault.link.drop_prob = 0.08;
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.trace.enabled = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);
  ASSERT_NE(report.trace, nullptr);
  const obs::Tracer& t = *report.trace;
  ASSERT_GT(report.fault.retransmissions, 0u);

  const std::uint32_t send_id = t.find_name("rdma.send");
  const std::uint32_t retry_id = t.find_name("rdma.retry");
  ASSERT_NE(send_id, obs::Tracer::kNoName);
  ASSERT_NE(retry_id, obs::Tracer::kNoName);

  const std::vector<obs::Span> spans = obs::extract_spans(t);
  std::size_t retries = 0;
  for (const obs::Span& retry : spans) {
    if (retry.name != retry_id) continue;
    ++retries;
    EXPECT_GE(retry.depth, 1u);
    // The enclosing span one level up on the same track is the send.
    bool enclosed = false;
    for (const obs::Span& send : spans) {
      if (send.name == send_id && send.host == retry.host &&
          send.entity == retry.entity && send.depth + 1 == retry.depth &&
          send.start <= retry.start && retry.end <= send.end) {
        enclosed = true;
        break;
      }
    }
    EXPECT_TRUE(enclosed) << "orphan rdma.retry span at t=" << retry.start;
  }
  EXPECT_GT(retries, 0u);
}

// ----- exact crash recovery (ring-neighbor replication) --------------------

/// Crash with resilience.replicate on: the survivors plus the adopted
/// replica partition must reproduce the *full* R ⋈ S — matches and
/// checksum identical to the fault-free join, nothing degraded.
class RecoveryRings : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryRings, ReplicatedCrashRecoversTheExactJoin) {
  const int hosts = GetParam();
  const int dead = hosts / 2;
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(hosts);
  cfg.fault.crashes.push_back({.host = dead, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.node.resilience.replicate = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_TRUE(report.fault.recovered);
  EXPECT_FALSE(report.fault.degraded);
  EXPECT_EQ(report.fault.lost_r_rows, 0u);
  EXPECT_EQ(report.fault.lost_s_rows, 0u);
  ASSERT_EQ(report.fault.crashed_hosts.size(), 1u);
  EXPECT_EQ(report.fault.crashed_hosts[0], dead);
  EXPECT_EQ(report.fault.adopter, (dead + 1) % hosts);
  EXPECT_GT(report.fault.replica_bytes, 0u);
  EXPECT_GT(report.fault.recovery_time, 0);
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  // The dead host still contributes nothing itself — its partition was
  // recomputed by the adopter.
  EXPECT_EQ(report.hosts[static_cast<std::size_t>(dead)].matches, 0u);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RecoveryRings, ::testing::Values(3, 4, 6));

// A crash later in the join phase: chunks are already circulating, some of
// the dead host's chunks are retired, the adopter has consumed arrivals
// that now need replay. Exactness must hold at any crash point.
TEST(FaultRecovery, MidJoinCrashRecoversTheExactJoin) {
  const int hosts = 4;
  const int dead = 2;
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  for (const SimDuration at :
       {1 * kMillisecond, 5 * kMillisecond, 20 * kMillisecond}) {
    ClusterConfig cfg = fault_cluster(hosts);
    cfg.fault.crashes.push_back({.host = dead, .at = at});
    cfg.node.resilience.ack_timeout = 20 * kMillisecond;
    cfg.node.resilience.replicate = true;

    CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
    const RunReport report = cyclo.run(r, s);

    if (report.fault.crashed_hosts.empty()) continue;  // run beat the crash
    EXPECT_TRUE(report.fault.recovered) << "crash at " << at;
    EXPECT_EQ(report.matches, ref.matches) << "crash at " << at;
    EXPECT_EQ(report.checksum, ref.checksum) << "crash at " << at;
  }
}

// Skew concentrates both the replica payload and the recovered join work;
// the band predicate exercises the sort-merge adopted partition.
TEST(FaultRecovery, ZipfAndBandJoinRecoverExactly) {
  auto r = rel::generate(
      {.rows = 12'000, .key_domain = 3'000, .zipf_z = 1.0, .seed = 31}, "R", 1);
  auto s = rel::generate(
      {.rows = 12'000, .key_domain = 3'000, .zipf_z = 1.0, .seed = 32}, "S", 2);
  const std::uint32_t band = 3;
  join::JoinResult expect =
      join::local_sort_merge_join(r.tuples(), s.tuples(), band);

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.crashes.push_back({.host = 1, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.node.resilience.replicate = true;

  CycloJoin cyclo(cfg,
                  JoinSpec{.algorithm = Algorithm::kSortMergeJoin, .band = band});
  const RunReport report = cyclo.run(r, s);

  EXPECT_TRUE(report.fault.recovered);
  EXPECT_EQ(report.matches, expect.matches());
  EXPECT_EQ(report.checksum, expect.checksum());
}

// With replication *off*, a crash still yields the PR-1 degraded contract —
// recovery must not change existing behavior when disabled.
TEST(FaultRecovery, ReplicationOffStaysDegraded) {
  const int hosts = 4;
  const int dead = 2;
  auto r = make_r();
  auto s = make_s();
  const Reference ref = degraded_reference(r, s, hosts, dead);

  ClusterConfig cfg = fault_cluster(hosts);
  cfg.fault.crashes.push_back({.host = dead, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.node.resilience.replicate = false;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_FALSE(report.fault.recovered);
  EXPECT_TRUE(report.fault.degraded);
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

// Replication without any crash: the answer and the degraded/recovered
// flags are untouched; the only observable difference is replica traffic.
TEST(FaultRecovery, ReplicationWithoutCrashIsInvisible) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
  cfg.node.resilience.ack_timeout = 500 * kMillisecond;
  cfg.node.resilience.replicate = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_FALSE(report.fault.degraded);
  EXPECT_FALSE(report.fault.recovered);
  EXPECT_GT(report.fault.replica_bytes, 0u);
  EXPECT_EQ(report.metrics.counters.at("chunks_adopted"), 0);
}

// Recovery under transient faults on top: drops and corruptions while the
// adopter is re-injecting. The final answer must still be exact.
TEST(FaultRecovery, RecoveryUnderTransientFaults) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(5);
  cfg.fault.seed = 13;
  cfg.fault.link.drop_prob = 0.03;
  cfg.fault.link.corrupt_prob = 0.03;
  cfg.fault.crashes.push_back({.host = 1, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.node.resilience.replicate = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_TRUE(report.fault.recovered);
  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

// The recovery counters surface in the metrics snapshot (satellite of the
// replication work): present for any resilient run, with the adoption
// counters non-zero exactly when a replicated crash happened.
TEST(FaultRecovery, MetricsSurfaceRecoveryCounters) {
  auto r = make_r();
  auto s = make_s();

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.crashes.push_back({.host = 2, .at = 0});
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;
  cfg.node.resilience.replicate = true;
  cfg.trace.enabled = true;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_TRUE(report.fault.recovered);
  for (const char* name : {"chunks_recovered", "chunks_reinjected",
                           "duplicates_skipped", "chunks_discarded_corrupt",
                           "replica_bytes", "replicas_resent",
                           "chunks_adopted"}) {
    EXPECT_TRUE(report.metrics.counters.count(name) != 0U) << name;
  }
  EXPECT_GT(report.metrics.counters.at("replica_bytes"), 0);
  EXPECT_EQ(report.metrics.counters.at("chunks_adopted"),
            static_cast<std::int64_t>(report.fault.chunks_adopted));
  // Per-host adaptive-timeout gauges ride along even when the policy is
  // off (they then report the static timeout).
  EXPECT_TRUE(report.metrics.gauges.count("host0.ack_timeout_ns") != 0U);
  // The Perfetto counter tracks exist on the trace.
  ASSERT_NE(report.trace, nullptr);
  EXPECT_NE(report.trace->find_name("chunks_recovered"), obs::Tracer::kNoName);
}

// The adaptive ack-timeout policy (used by default on the rt backend) also
// works under simulation: enough clean acks move the effective timeout to
// a multiple of the observed p99 RTT, and nothing is re-injected spuriously.
TEST(FaultRecovery, AdaptiveAckTimeoutConvergesWithoutSpuriousReinjects) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(4);
  // Small buffers: each host circulates enough chunks to clear the
  // adaptive policy's min_samples threshold.
  cfg.node.buffer_bytes = 4 * 1024;
  cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
  cfg.node.resilience.ack_timeout = 500 * kMillisecond;
  cfg.node.resilience.adaptive.enabled = true;
  cfg.node.resilience.adaptive.floor = 1 * kMillisecond;
  cfg.node.resilience.adaptive.multiplier = 8.0;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  EXPECT_EQ(report.fault.chunks_reinjected, 0u);
  // RTTs were sampled and the effective timeout left the static setting.
  EXPECT_TRUE(report.metrics.histograms.count("ack_rtt_ns") != 0U);
  const double t0 = report.metrics.gauges.at("host0.ack_timeout_ns");
  EXPECT_LT(t0, static_cast<double>(500 * kMillisecond));
  EXPECT_GE(t0, static_cast<double>(1 * kMillisecond));
}

// Randomized chaos soak (CI runs this with a randomized base seed under
// TSan): seeded drop/corrupt/crash combinations with replication on must
// always converge to the exact answer.
TEST(FaultRecovery, ChaosSoakExactUnderRandomSeeds) {
  const char* base_env = std::getenv("CHAOS_SOAK_BASE");
  const char* iters_env = std::getenv("CHAOS_SOAK");
  // When set, every soak iteration arms the flight recorder's crash black
  // box into this directory (one CJT1 dump per seed) — CI uploads them as
  // build artifacts, so a failing seed ships its own evidence.
  const char* blackbox_env = std::getenv("CHAOS_BLACKBOX_DIR");
  const std::uint64_t base =
      base_env != nullptr ? std::strtoull(base_env, nullptr, 10) : 100;
  const int iters = iters_env != nullptr ? std::atoi(iters_env) : 2;

  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  for (int k = 0; k < iters; ++k) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(k);
    ClusterConfig cfg = fault_cluster(4);
    cfg.fault.seed = seed;
    cfg.fault.link.drop_prob = 0.02;
    cfg.fault.link.corrupt_prob = 0.02;
    cfg.fault.crashes.push_back(
        {.host = static_cast<int>(seed % 4),
         .at = static_cast<SimDuration>(seed % 7) * kMillisecond});
    cfg.node.resilience.ack_timeout = 20 * kMillisecond;
    cfg.node.resilience.replicate = true;
    if (blackbox_env != nullptr) {
      cfg.flight.blackbox_path = std::string(blackbox_env) + "/blackbox_seed" +
                                 std::to_string(seed) + ".cjt";
    }

    CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
    const RunReport report = cyclo.run(r, s);

    EXPECT_EQ(report.matches, ref.matches) << "seed " << seed;
    EXPECT_EQ(report.checksum, ref.checksum) << "seed " << seed;
    if (!report.fault.crashed_hosts.empty()) {
      EXPECT_TRUE(report.fault.recovered) << "seed " << seed;
    }
  }
}

// ----- stale query-group frames (serving-layer wave isolation) -------------

namespace stale {

sim::Task<void> consume(Cluster& cluster, int i) {
  ring::RoundaboutNode& node = cluster.node(i);
  while (true) {
    ring::InboundChunk chunk = co_await node.next_chunk();
    if (chunk.stop) break;
    // Ring protocol: retire at the host just before the origin (the ack's
    // next hop is the origin itself), forward everywhere else.
    if (cluster.fabric().successor(i) == chunk.origin) {
      node.retire(chunk);
    } else {
      node.forward(chunk);
    }
  }
}

/// Resilient 3-host cluster with no actual faults (a factor-1.0 slowdown
/// arms the frame protocol) and a huge ack timeout so the scanner never
/// re-injects during the test window.
ClusterConfig stale_cluster(std::uint16_t group) {
  ClusterConfig cfg = fault_cluster(3);
  cfg.node.buffer_bytes = 4096;
  cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
  cfg.node.resilience.ack_timeout = 3600 * kSecond;
  cfg.node.resilience.query_group = group;
  return cfg;
}

struct Outcome {
  std::uint64_t stale_at_1 = 0;
  std::uint64_t received_at_1 = 0;
  std::uint64_t received_at_2 = 0;
  std::size_t unacked_at_0 = 0;
};

/// Injects one chunk from host 0 and reports what the ring did with it.
/// `group_at_1` overrides host 1's query group (it models a node still
/// pinned to another serving wave).
Outcome rotate_one_chunk(std::uint16_t group, std::uint16_t group_at_1) {
  sim::Engine engine;
  Cluster cluster(engine, stale_cluster(group));
  cluster.node(1).set_query_group(group_at_1);

  std::vector<std::byte> slab(512, std::byte{0xAB});
  bool done = false;
  engine.spawn(
      [](sim::Engine& engine, Cluster& cluster, std::span<std::byte> slab,
         bool* done) -> sim::Task<void> {
        for (int i = 0; i < 3; ++i) {
          std::vector<std::span<std::byte>> slabs;
          if (i == 0) slabs.push_back(slab);
          co_await cluster.node(i).start({}, std::move(slabs));
        }
        for (int i = 0; i < 3; ++i) {
          engine.spawn(consume(cluster, i), "consume");
        }
        co_await cluster.node(0).send_local(
            std::span<const std::byte>(slab.data(), 512));
        co_await engine.sleep(100 * kMillisecond);
        for (int i = 0; i < 3; ++i) cluster.node(i).request_stop();
        for (int i = 0; i < 3; ++i) co_await cluster.node(i).drain();
        *done = true;
      }(engine, cluster, slab, &done),
      "driver");
  engine.run();
  engine.check_all_complete();
  CJ_CHECK(done);

  Outcome out;
  out.stale_at_1 = cluster.node(1).stale_query_discards();
  out.received_at_1 = cluster.node(1).chunks_received();
  out.received_at_2 = cluster.node(2).chunks_received();
  out.unacked_at_0 = cluster.node(0).outstanding_unacked();
  return out;
}

}  // namespace stale

TEST(StaleQueryFrames, MismatchedGroupIsDiscardedWithCounter) {
  // Host 1 believes it serves wave 9; the rotation is stamped wave 7. The
  // chunk must be dropped at host 1 — never joined, acked or forwarded —
  // and counted as a stale-query discard.
  const stale::Outcome out = stale::rotate_one_chunk(7, 9);
  EXPECT_EQ(out.stale_at_1, 1u);
  EXPECT_EQ(out.received_at_1, 0u);
  EXPECT_EQ(out.received_at_2, 0u);
  // The discard must not acknowledge the origin's chunk either.
  EXPECT_EQ(out.unacked_at_0, 1u);
}

TEST(StaleQueryFrames, MatchingGroupPassesThrough) {
  const stale::Outcome out = stale::rotate_one_chunk(7, 7);
  EXPECT_EQ(out.stale_at_1, 0u);
  EXPECT_EQ(out.received_at_1, 1u);
  // Host 1 retired the chunk; the ack made it home around the ring.
  EXPECT_EQ(out.unacked_at_0, 0u);
}

TEST(StaleQueryFrames, UniformNonZeroGroupRunStaysExact) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
  cfg.node.resilience.query_group = 12;  // all hosts in the same wave

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
  // The counter is surfaced and zero: same group everywhere.
  ASSERT_TRUE(report.metrics.counters.count("stale_query_discards") != 0U);
  EXPECT_EQ(report.metrics.counters.at("stale_query_discards"), 0);
}

// Other algorithms ride the same resilient transport.
TEST(FaultFramework, SortMergeSurvivesTransientFaults) {
  auto r = make_r();
  auto s = make_s();
  const Reference ref = reference_equi(r, s);

  ClusterConfig cfg = fault_cluster(4);
  cfg.fault.seed = 5;
  cfg.fault.link.drop_prob = 0.04;
  cfg.fault.link.corrupt_prob = 0.04;
  cfg.node.resilience.ack_timeout = 20 * kMillisecond;

  CycloJoin cyclo(cfg, JoinSpec{.algorithm = Algorithm::kSortMergeJoin});
  const RunReport report = cyclo.run(r, s);

  EXPECT_EQ(report.matches, ref.matches);
  EXPECT_EQ(report.checksum, ref.checksum);
}

}  // namespace
}  // namespace cj::cyclo
