// Tests for the observability layer: tracer/metrics units, the binary
// round-trip, span extraction and the derived analyses, plus the two
// system-level guarantees the layer makes:
//
//  - golden traces: the same seed + config produces a byte-identical trace
//    (the 3-host ring trace is checked in under tests/golden/; regenerate
//    with CJ_UPDATE_GOLDEN=1 after an intentional schema change), and
//  - the overlap invariant: per-host core-span time in a trace equals the
//    CorePool busy ledger to the nanosecond, and join work overlaps the
//    transmitter's send windows on every multi-host ring.
//
// The golden harness drives the ring transport with opaque payloads so
// every cost is analytic (link serialization, NIC overheads, consume());
// measured execute() durations vary across machines by design and never
// appear in a golden trace.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "cyclo/cluster.h"
#include "cyclo/cyclo_join.h"
#include "obs/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rel/generator.h"
#include "ring/node.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace cj::obs {

/// Set by `--update-golden` in this binary's main (equivalent to running
/// with CJ_UPDATE_GOLDEN=1): regenerate tests/golden/ instead of comparing.
bool g_update_golden = false;

namespace {

using sim::Task;

// ----- tracer unit behavior ------------------------------------------------

TEST(Tracer, RecordsEventsAndInternsNames) {
  Tracer t;
  t.begin(10, 0, "core0", "join", 42);
  t.end(20, 0, "core0");
  t.instant(15, 1, "ring", "recv", 128);
  t.counter(15, 1, "cores_busy", 3);

  ASSERT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.events()[0].kind, EventKind::kBegin);
  EXPECT_EQ(t.events()[0].ts, 10);
  EXPECT_EQ(t.events()[0].arg, 42);
  EXPECT_EQ(t.name(t.events()[0].entity), "core0");
  EXPECT_EQ(t.name(t.events()[0].name), "join");
  EXPECT_EQ(t.events()[1].kind, EventKind::kEnd);
  EXPECT_EQ(t.events()[2].host, 1);
  EXPECT_EQ(t.events()[3].kind, EventKind::kCounter);
  EXPECT_EQ(t.events()[3].arg, 3);

  // "core0" is interned once even though begin and end both name it.
  EXPECT_EQ(t.events()[0].entity, t.events()[1].entity);
  EXPECT_EQ(t.find_name("core0"), t.events()[0].entity);
  EXPECT_EQ(t.find_name("no-such-name"), Tracer::kNoName);
}

TEST(Tracer, ChromeJsonIsWellFormedAndNamesTracks) {
  Tracer t;
  t.begin(1'500, 0, "core0", "join", 7);
  t.end(2'500, 0, "core0");
  t.instant(3'000, kGlobalHost, "fault", "fault.drop", 4);
  t.counter(3'000, 0, "cores_busy", 1);

  const std::string json = t.chrome_json();
  // Envelope + metadata naming the host-0 process and the fault track.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"host0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"faults\""), std::string::npos);
  // Timestamps are microseconds with fixed 3-digit ns fractions.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.500"), std::string::npos);
  // One B, one E, one i, one C phase.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Tracer, BinaryRoundTripIsExact) {
  Tracer t;
  t.begin(0, 0, "tx", "send", 4096);
  t.instant(999, kGlobalHost, "fault", "fault.crash", 2);
  t.end(1'000'000'007, 0, "tx");
  t.counter(5, 3, "cores_busy", -1);

  const std::vector<std::uint8_t> bytes = t.binary();
  Tracer back;
  ASSERT_TRUE(Tracer::parse_binary(bytes, back));
  ASSERT_EQ(back.events().size(), t.events().size());
  for (std::size_t i = 0; i < t.events().size(); ++i) {
    EXPECT_EQ(back.events()[i], t.events()[i]) << "event " << i;
  }
  ASSERT_EQ(back.num_names(), t.num_names());
  for (std::uint32_t i = 0; i < t.num_names(); ++i) {
    EXPECT_EQ(back.name(i), t.name(i));
  }
}

TEST(Tracer, ParseBinaryRejectsCorruptInput) {
  Tracer t;
  t.instant(1, 0, "ring", "recv", 0);
  std::vector<std::uint8_t> bytes = t.binary();

  Tracer out1;
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(Tracer::parse_binary(truncated, out1));

  Tracer out2;
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(Tracer::parse_binary(bad_magic, out2));

  Tracer out3;
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(Tracer::parse_binary(trailing, out3));

  Tracer out4;
  EXPECT_FALSE(Tracer::parse_binary({}, out4));
}

// ----- metrics -------------------------------------------------------------

TEST(Metrics, CountersGaugesAndHistogramSummaries) {
  MetricsRegistry reg;
  reg.add_counter("bytes_on_wire", 100);
  reg.add_counter("bytes_on_wire", 28);
  reg.set_gauge("cpu_load_join", 0.75);
  for (std::int64_t s : {30, 10, 20, 40, 50, 60, 70, 80, 90, 100}) {
    reg.record("revolution_ns", s);
  }

  EXPECT_EQ(reg.counter("bytes_on_wire"), 128);
  EXPECT_EQ(reg.counter("never_touched"), 0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("bytes_on_wire"), 128);
  EXPECT_DOUBLE_EQ(snap.gauges.at("cpu_load_join"), 0.75);
  const HistogramSummary& h = snap.histograms.at("revolution_ns");
  EXPECT_EQ(h.count, 10u);
  EXPECT_EQ(h.min, 10);
  EXPECT_EQ(h.max, 100);
  EXPECT_DOUBLE_EQ(h.mean, 55.0);
  // Nearest rank on the sorted samples (rank = floor(q * n)).
  EXPECT_EQ(h.p50, 60);
  EXPECT_EQ(h.p90, 100);
  EXPECT_EQ(h.p99, 100);
}

TEST(Metrics, HistogramQuantilesNearestRankEdgeCases) {
  // Nearest rank is rank = floor(q * n) on the sorted samples — pin the
  // edge cases so a future "improvement" to interpolated quantiles is a
  // deliberate schema change, not an accident (summaries are diffed in
  // checked-in BENCH_*.json files).
  {
    MetricsRegistry reg;  // single sample: every quantile is that sample
    reg.record("h", -7);
    const HistogramSummary& h = reg.snapshot().histograms.at("h");
    EXPECT_EQ(h.count, 1u);
    EXPECT_EQ(h.min, -7);
    EXPECT_EQ(h.max, -7);
    EXPECT_DOUBLE_EQ(h.mean, -7.0);
    EXPECT_EQ(h.p50, -7);
    EXPECT_EQ(h.p90, -7);
    EXPECT_EQ(h.p99, -7);
  }
  {
    MetricsRegistry reg;  // two samples: floor(0.5 * 2) = 1 -> upper sample
    reg.record("h", 10);
    reg.record("h", 20);
    const HistogramSummary& h = reg.snapshot().histograms.at("h");
    EXPECT_EQ(h.p50, 20);
    EXPECT_EQ(h.p90, 20);
    EXPECT_EQ(h.p99, 20);
    EXPECT_DOUBLE_EQ(h.mean, 15.0);
  }
  {
    MetricsRegistry reg;  // 100 distinct samples: ranks land exactly
    for (std::int64_t v = 100; v >= 1; --v) reg.record("h", v);
    const HistogramSummary& h = reg.snapshot().histograms.at("h");
    EXPECT_EQ(h.p50, 51);   // sorted[50]
    EXPECT_EQ(h.p90, 91);   // sorted[90]
    EXPECT_EQ(h.p99, 100);  // sorted[99]
  }
  {
    MetricsRegistry reg;  // all-equal samples collapse every statistic
    for (int i = 0; i < 17; ++i) reg.record("h", 42);
    const HistogramSummary& h = reg.snapshot().histograms.at("h");
    EXPECT_EQ(h.min, 42);
    EXPECT_EQ(h.max, 42);
    EXPECT_EQ(h.p50, 42);
    EXPECT_EQ(h.p99, 42);
    EXPECT_DOUBLE_EQ(h.mean, 42.0);
  }
  {
    MetricsRegistry reg;  // never-recorded histograms do not exist at all
    reg.add_counter("c", 1);
    EXPECT_EQ(reg.snapshot().histograms.count("h"), 0u);
  }
}

TEST(Tracer, BinaryRoundTripFuzz) {
  // Randomized CJT1 round trips: any event sequence the tracer can record
  // must survive binary() -> parse_binary() exactly, and every *strict
  // prefix* of the encoding must be rejected (the format has no trailing
  // slack: truncation anywhere is detectable).
  Rng rng(0xC17'0BEEF);
  const char* entities[] = {"core0", "core1", "tx", "ring", "qp0"};
  const char* names[] = {"join", "send", "recv", "probe", "fault.crash"};

  for (int iter = 0; iter < 8; ++iter) {
    Tracer t;
    const int events = static_cast<int>(rng.next_in(1, 40));
    std::int64_t ts = 0;
    for (int e = 0; e < events; ++e) {
      ts += static_cast<std::int64_t>(rng.next_below(1'000'000));
      const int host = static_cast<int>(rng.next_below(4));
      const char* entity = entities[rng.next_below(std::size(entities))];
      const char* name = names[rng.next_below(std::size(names))];
      const auto arg = static_cast<std::int64_t>(rng.next()) >> 1;
      switch (rng.next_below(4)) {
        case 0: t.begin(ts, host, entity, name, arg); break;
        case 1: t.end(ts, host, entity); break;
        case 2: t.instant(ts, host, entity, name, arg); break;
        default: t.counter(ts, host, name, arg); break;
      }
    }

    const std::vector<std::uint8_t> bytes = t.binary();
    Tracer back;
    ASSERT_TRUE(Tracer::parse_binary(bytes, back)) << "iter " << iter;
    ASSERT_EQ(back.events().size(), t.events().size());
    for (std::size_t i = 0; i < t.events().size(); ++i) {
      EXPECT_EQ(back.events()[i], t.events()[i]) << "iter " << iter;
    }
    ASSERT_EQ(back.num_names(), t.num_names());
    for (std::uint32_t i = 0; i < t.num_names(); ++i) {
      EXPECT_EQ(back.name(i), t.name(i));
    }

    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      Tracer reject;
      ASSERT_FALSE(Tracer::parse_binary(
          std::vector<std::uint8_t>(bytes.begin(),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(cut)),
          reject))
          << "iter " << iter << ": strict prefix of " << cut << "/"
          << bytes.size() << " bytes parsed";
    }
  }
}

TEST(Metrics, SnapshotJsonIsStable) {
  MetricsRegistry reg;
  reg.add_counter("b", 2);
  reg.add_counter("a", 1);
  reg.set_gauge("g", 0.5);
  const std::string json = reg.snapshot().to_json();
  // Keys are map-ordered, so the layout is deterministic.
  EXPECT_EQ(json,
            "{\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"g\":0.5},"
            "\"histograms\":{}}");
}

// ----- span extraction and analyses ----------------------------------------

TEST(Analysis, ExtractSpansPairsAndNestsPerTrack) {
  Tracer t;
  t.begin(0, 0, "qp0", "rdma.send", 100);   // outer
  t.begin(10, 0, "qp0", "rdma.retry", 1);   // nested
  t.end(20, 0, "qp0");                      // closes retry
  t.begin(30, 1, "qp0", "rdma.send", 0);    // other host, own track
  t.end(40, 0, "qp0");                      // closes send
  t.end(45, 2, "core0");                    // stray end: ignored
  t.instant(50, 0, "ring", "recv", 0);      // last timestamp: closes open spans

  const std::vector<Span> spans = extract_spans(t);
  ASSERT_EQ(spans.size(), 3u);

  std::map<std::tuple<int, std::int64_t>, const Span*> by_start;
  for (const Span& s : spans) by_start[{s.host, s.start}] = &s;

  const Span* outer = by_start.at({0, 0});
  EXPECT_EQ(t.name(outer->name), "rdma.send");
  EXPECT_EQ(outer->end, 40);
  EXPECT_EQ(outer->depth, 0u);

  const Span* retry = by_start.at({0, 10});
  EXPECT_EQ(t.name(retry->name), "rdma.retry");
  EXPECT_EQ(retry->end, 20);
  EXPECT_EQ(retry->depth, 1u);

  // Unclosed span on host 1 is closed at the trace's last timestamp.
  const Span* open = by_start.at({1, 30});
  EXPECT_EQ(open->end, 50);
}

TEST(Analysis, OverlapMeasuresJoinTimeInsideTransferWindows) {
  Tracer t;
  // Host 0: one 100 ns send window [0, 100); two cores join [50, 150).
  t.begin(0, 0, "tx", "send", 4096);
  t.begin(50, 0, "core0", "join", 0);
  t.begin(50, 0, "core1", "join", 0);
  t.end(100, 0, "tx");
  t.end(150, 0, "core0");
  t.end(150, 0, "core1");
  // Host 1: joins but never transmits (ring tail): ratio 0.
  t.begin(0, 1, "core0", "join", 0);
  t.end(80, 1, "core0");

  const std::vector<HostOverlap> ov = overlap_by_host(t);
  ASSERT_EQ(ov.size(), 2u);
  EXPECT_EQ(ov[0].host, 0);
  EXPECT_EQ(ov[0].transfer_time, 100);
  EXPECT_EQ(ov[0].join_busy_total, 200);     // two cores x 100 ns
  EXPECT_EQ(ov[0].join_busy_in_transfer, 100);  // two cores x [50, 100)
  EXPECT_DOUBLE_EQ(ov[0].ratio, 1.0);
  EXPECT_EQ(ov[1].host, 1);
  EXPECT_EQ(ov[1].transfer_time, 0);
  EXPECT_DOUBLE_EQ(ov[1].ratio, 0.0);
}

TEST(Analysis, CriticalPathAttributesMakespanAndBalances) {
  Tracer t;
  // Host 0 finishes last (end 200). Innermost-span attribution: "setup"
  // [0,50), idle [50,80), "join" [80,200) with a nested "probe" [100,120).
  t.begin(0, 0, "core0", "setup", 0);
  t.end(50, 0, "core0");
  t.begin(80, 0, "core0", "join", 0);
  t.begin(100, 0, "core0", "probe", 0);
  t.end(120, 0, "core0");
  t.end(200, 0, "core0");
  // A faster host, ignored by the critical path.
  t.begin(0, 1, "core0", "join", 0);
  t.end(90, 1, "core0");

  const CriticalPath cp = critical_path(t);
  EXPECT_EQ(cp.host, 0);
  EXPECT_EQ(cp.end, 200);
  EXPECT_EQ(cp.idle, 30);

  std::map<std::string, std::int64_t> by_tag(cp.by_tag.begin(), cp.by_tag.end());
  EXPECT_EQ(by_tag.at("setup"), 50);
  EXPECT_EQ(by_tag.at("join"), 100);  // [80,100) + [120,200)
  EXPECT_EQ(by_tag.at("probe"), 20);

  std::int64_t total = cp.idle;
  for (const auto& [_, d] : cp.by_tag) total += d;
  EXPECT_EQ(total, cp.end);  // the decomposition is exact
}

// ----- golden traces: analytic-cost ring harness ---------------------------

// Drives the ring transport with opaque payloads (as ring_test does) so the
// whole run is analytic and the trace is byte-identical across machines.
struct TracedRing {
  sim::Engine engine;
  Tracer tracer;
  cyclo::Cluster cluster;
  int n;
  std::uint64_t chunks_per_host;
  std::size_t payload_size;
  std::vector<std::vector<std::byte>> slabs;

  static cyclo::ClusterConfig config(int hosts, int buffers,
                                     std::size_t buffer_bytes) {
    cyclo::ClusterConfig cfg;
    cfg.num_hosts = hosts;
    cfg.cores_per_host = 2;
    cfg.node.num_buffers = buffers;
    cfg.node.buffer_bytes = buffer_bytes;
    return cfg;
  }

  TracedRing(int hosts, std::uint64_t chunks_per_host, std::size_t payload)
      : cluster((engine.set_tracer(&tracer), engine),
                config(hosts, 4, payload)),
        n(hosts),
        chunks_per_host(chunks_per_host),
        payload_size(payload) {
    for (int i = 0; i < n; ++i) {
      std::vector<std::byte> slab(chunks_per_host * payload_size);
      for (std::uint64_t c = 0; c < chunks_per_host; ++c) {
        slab[c * payload_size] = static_cast<std::byte>(i);
        slab[c * payload_size + 1] = static_cast<std::byte>(c);
      }
      slabs.push_back(std::move(slab));
    }
  }

  Task<void> host_process(int i) {
    ring::RoundaboutNode& node = cluster.node(i);
    const std::uint64_t global = chunks_per_host * static_cast<std::uint64_t>(n);
    {
      std::vector<std::span<std::byte>> s;
      s.push_back(slabs[static_cast<std::size_t>(i)]);
      co_await node.start(ring::NodeCounts{global, global}, std::move(s));
    }
    engine.spawn(injector(i), "inj");
    for (std::uint64_t k = 0; k < global - chunks_per_host; ++k) {
      ring::InboundChunk chunk = co_await node.next_chunk();
      const int origin = static_cast<int>(chunk.payload[0]);
      if (cluster.fabric().successor(i) == origin) {
        node.retire(chunk);
      } else {
        node.forward(chunk);
      }
    }
    co_await node.drain();
  }

  Task<void> injector(int i) {
    ring::RoundaboutNode& node = cluster.node(i);
    for (std::uint64_t c = 0; c < chunks_per_host; ++c) {
      co_await node.send_local(
          std::span<const std::byte>(slabs[static_cast<std::size_t>(i)])
              .subspan(c * payload_size, payload_size));
    }
  }

  void run() {
    for (int i = 0; i < n; ++i) {
      engine.spawn(host_process(i), "host" + std::to_string(i));
    }
    engine.run();
    engine.check_all_complete();
  }
};

TEST(GoldenTrace, SameSeedAndConfigGivesByteIdenticalTraces) {
  TracedRing a(3, 2, 128);
  a.run();
  TracedRing b(3, 2, 128);
  b.run();

  ASSERT_FALSE(a.tracer.events().empty());
  EXPECT_EQ(a.tracer.binary(), b.tracer.binary());
  EXPECT_EQ(a.tracer.chrome_json(), b.tracer.chrome_json());
}

TEST(GoldenTrace, ThreeHostRingMatchesCheckedInGolden) {
  TracedRing ring(3, 2, 128);
  ring.run();
  const std::string json = ring.tracer.chrome_json();

  const std::string path =
      std::string(CJ_TEST_GOLDEN_DIR) + "/obs_3host_trace.json";
  if (g_update_golden || std::getenv("CJ_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << json;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with CJ_UPDATE_GOLDEN=1 to create it)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "trace schema drifted from tests/golden/obs_3host_trace.json; if "
         "the change is intentional, regenerate with CJ_UPDATE_GOLDEN=1";
}

TEST(GoldenTrace, RingEventsCoverTheProtocol) {
  TracedRing ring(3, 2, 128);
  ring.run();
  const Tracer& t = ring.tracer;

  auto instants = [&](std::string_view name) {
    const std::uint32_t id = t.find_name(name);
    std::size_t count = 0;
    for (const TraceEvent& e : t.events()) {
      if (e.kind == EventKind::kInstant && e.name == id) ++count;
    }
    return id == Tracer::kNoName ? 0 : count;
  };
  // 6 chunks injected, each forwarded once (middle hop) and retired once.
  EXPECT_EQ(instants("inject"), 6u);
  EXPECT_EQ(instants("forward"), 6u);
  EXPECT_EQ(instants("retire"), 6u);
  // Every host receives 4 data chunks (2 from each of 2 other hosts).
  EXPECT_EQ(instants("recv"), 12u);
  // Every retire triggers a zero-length ack that full-circles to the origin.
  EXPECT_GT(instants("ack"), 0u);
}

// ----- overlap invariant on real joins -------------------------------------

class OverlapMatrix
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(OverlapMatrix, TraceCoreTimeEqualsLedgerAndJoinOverlapsTransfer) {
  const auto [hosts, buffer_bytes] = GetParam();
  rel::Relation r =
      rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 31}, "R", 1);
  rel::Relation s =
      rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 32}, "S", 2);

  cyclo::ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.cores_per_host = 2;
  cfg.node.num_buffers = 4;
  cfg.node.buffer_bytes = buffer_bytes;
  cfg.trace.enabled = true;

  cyclo::CycloJoin cyclo(cfg, {.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport report = cyclo.run(r, s);
  ASSERT_NE(report.trace, nullptr);

  // Per host: the summed core-span time in the trace must equal the
  // CorePool busy ledger exactly — the spans bracket precisely the virtual
  // occupancy that bill() records.
  const std::vector<Span> spans = extract_spans(*report.trace);
  for (int h = 0; h < hosts; ++h) {
    std::int64_t from_trace = 0;
    for (const Span& span : spans) {
      if (span.host != h) continue;
      const std::string_view entity = report.trace->name(span.entity);
      if (entity.starts_with("core")) from_trace += span.end - span.start;
    }
    std::int64_t from_ledger = 0;
    for (const auto& [tag, busy] :
         report.hosts[static_cast<std::size_t>(h)].busy_by_tag) {
      from_ledger += busy;
    }
    EXPECT_EQ(from_trace, from_ledger) << "host " << h;
  }

  // Multi-host rings overlap join work with their transfers.
  const std::vector<HostOverlap> ov = overlap_by_host(*report.trace);
  ASSERT_EQ(ov.size(), static_cast<std::size_t>(hosts));
  for (const HostOverlap& o : ov) {
    if (hosts == 1) {
      EXPECT_EQ(o.transfer_time, 0) << "host " << o.host;
    } else {
      EXPECT_GT(o.transfer_time, 0) << "host " << o.host;
      EXPECT_GT(o.ratio, 0.0) << "host " << o.host;
    }
  }

  // The derived gauges in the metrics snapshot agree with the analysis.
  for (const HostOverlap& o : ov) {
    const double gauge = report.metrics.gauges.at(
        "host" + std::to_string(o.host) + ".overlap_ratio");
    EXPECT_DOUBLE_EQ(gauge, o.ratio);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RingsByChunkSize, OverlapMatrix,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(std::size_t{16} * 1024,
                                         std::size_t{64} * 1024)));

TEST(TracedJoin, DisabledByDefaultAndCheap) {
  rel::Relation r = rel::generate({.rows = 5'000, .seed = 41}, "R", 1);
  rel::Relation s = rel::generate({.rows = 5'000, .seed = 42}, "S", 2);
  cyclo::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cyclo::CycloJoin cyclo(cfg, {.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport report = cyclo.run(r, s);
  EXPECT_EQ(report.trace, nullptr);
  // Metrics are always on (integer adds, no trace storage).
  EXPECT_FALSE(report.metrics.empty());
  EXPECT_GT(report.metrics.counters.at("bytes_on_wire"), 0);
  EXPECT_EQ(report.metrics.gauges.count("host0.overlap_ratio"), 0u);
}

TEST(TracedJoin, RevolutionHistogramCountsFullCircles) {
  rel::Relation r = rel::generate({.rows = 20'000, .seed = 51}, "R", 1);
  rel::Relation s = rel::generate({.rows = 20'000, .seed = 52}, "S", 2);
  cyclo::ClusterConfig cfg;
  cfg.num_hosts = 3;
  cfg.node.buffer_bytes = 16 * 1024;
  cyclo::CycloJoin cyclo(cfg, {.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport report = cyclo.run(r, s);

  const HistogramSummary& rev = report.metrics.histograms.at("revolution_ns");
  // Every injected chunk makes exactly one full revolution.
  EXPECT_EQ(rev.count,
            static_cast<std::uint64_t>(
                report.metrics.counters.at("chunks_injected")));
  EXPECT_GT(rev.min, 0);
  EXPECT_LE(rev.p50, rev.p99);
}

// ----- log sink ------------------------------------------------------------

TEST(LogSink, CapturesBlockedWaiterDiagnostics) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });

  sim::Engine engine;
  sim::Event never(engine, "never-set");
  engine.spawn(
      [](sim::Event& ev) -> Task<void> { co_await ev.wait(); }(never),
      "stuck");
  engine.run();  // queue drains with the process parked on the event
  engine.dump_blocked();
  set_log_sink(nullptr);

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("blocked waiters (1)"), std::string::npos);
  EXPECT_NE(captured[0].find("event"), std::string::npos);
  EXPECT_NE(captured[0].find("never-set"), std::string::npos);
}

TEST(LogSink, NullSinkRestoresStderrPath) {
  // After restoring, logging must not crash (output goes to stderr again).
  set_log_sink(nullptr);
  CJ_LOG(kWarn) << "obs_test: stderr path restored";
}

}  // namespace
}  // namespace cj::obs

// Custom main (NO_GTEST_MAIN in tests/CMakeLists.txt) so the golden files
// can be regenerated with `obs_test --update-golden` after an intentional
// trace-schema change (docs/OBSERVABILITY.md).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") {
      cj::obs::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
