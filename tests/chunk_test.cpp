// Unit tests for the chunk wire format: encode/decode round trips, size
// limits, run directories, oversized-partition splitting.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cyclo/chunk.h"
#include "join/radix.h"
#include "join/sort_merge.h"
#include "rel/generator.h"

namespace cj::cyclo {
namespace {

rel::Relation gen(std::uint64_t rows, std::uint64_t domain, std::uint64_t seed,
                  double zipf = 0.0) {
  return rel::generate(
      {.rows = rows, .key_domain = domain, .zipf_z = zipf, .seed = seed}, "t",
      seed);
}

TEST(ChunkWriter, TuplesPerChunkAccountsForDirectory) {
  ChunkWriter writer(1024);
  // 1024 - 16 header = 1008 / 12 = 84 tuples with no runs.
  EXPECT_EQ(writer.tuples_per_chunk(0), 84u);
  // Each run steals 8 bytes.
  EXPECT_EQ(writer.tuples_per_chunk(3), (1024u - 16 - 24) / 12);
}

TEST(ChunkWriter, SortedRoundTrip) {
  auto r = gen(5'000, 1'000, 1);
  std::vector<rel::Tuple> sorted(r.tuples().begin(), r.tuples().end());
  join::sort_fragment(sorted);

  ChunkWriter writer(4096);
  ChunkSlab slab = writer.from_sorted(sorted, 3);
  EXPECT_GT(slab.num_chunks(), 1u);
  EXPECT_EQ(slab.total_tuples(), sorted.size());

  std::vector<rel::Tuple> reassembled;
  for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
    const ChunkView view = decode_chunk(slab.chunk(c));
    EXPECT_EQ(view.kind, ChunkKind::kSorted);
    EXPECT_EQ(view.origin_host, 3);
    EXPECT_TRUE(view.runs.empty());
    reassembled.insert(reassembled.end(), view.tuples.begin(), view.tuples.end());
  }
  EXPECT_EQ(reassembled, sorted);
}

TEST(ChunkWriter, RawRoundTripPreservesOrder) {
  auto r = gen(1'000, 500, 2);
  ChunkWriter writer(2048);
  ChunkSlab slab = writer.from_raw(r.tuples(), 1);
  std::vector<rel::Tuple> reassembled;
  for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
    const ChunkView view = decode_chunk(slab.chunk(c));
    EXPECT_EQ(view.kind, ChunkKind::kRaw);
    reassembled.insert(reassembled.end(), view.tuples.begin(), view.tuples.end());
  }
  ASSERT_EQ(reassembled.size(), r.rows());
  EXPECT_TRUE(std::equal(r.tuples().begin(), r.tuples().end(), reassembled.begin()));
}

TEST(ChunkWriter, PartitionedRoundTripKeepsRunConsistency) {
  auto r = gen(20'000, 4'000, 3);
  auto parts = join::radix_cluster(r.tuples(), 6, 8);
  ChunkWriter writer(8192);
  ChunkSlab slab = writer.from_partitioned(parts, 2);
  EXPECT_EQ(slab.total_tuples(), r.rows());

  std::multiset<std::uint64_t> in, out;
  // uint64_t{...}: packed Tuple — a const& straight to the offset-4 payload
  // member would be a misaligned reference (UB).
  for (const auto& t : r.tuples()) in.insert(std::uint64_t{t.payload});

  std::uint32_t last_partition = 0;
  for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
    const ChunkView view = decode_chunk(slab.chunk(c));
    EXPECT_EQ(view.kind, ChunkKind::kPartitioned);
    EXPECT_EQ(view.radix_bits, 6);
    std::size_t offset = 0;
    for (const auto& run : view.runs) {
      // Runs appear in nondecreasing partition order across the slab.
      EXPECT_GE(run.partition_id, last_partition);
      last_partition = run.partition_id;
      for (std::size_t i = 0; i < run.count; ++i) {
        const rel::Tuple& t = view.tuples[offset + i];
        EXPECT_EQ(join::partition_of(t.key, 6), run.partition_id);
        out.insert(std::uint64_t{t.payload});
      }
      offset += run.count;
    }
    EXPECT_EQ(offset, view.tuples.size());
  }
  EXPECT_EQ(in, out);
}

TEST(ChunkWriter, OversizedPartitionSplitsAcrossChunks) {
  // All tuples share one key -> a single giant partition (heavy skew).
  rel::Relation r("skew");
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    r.push_back({42, i});
  }
  auto parts = join::radix_cluster(r.tuples(), 4, 8);
  ChunkWriter writer(4096);
  ChunkSlab slab = writer.from_partitioned(parts, 0);
  EXPECT_GT(slab.num_chunks(), 20u);

  const std::uint32_t p42 = join::partition_of(42, 4);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
    const ChunkView view = decode_chunk(slab.chunk(c));
    ASSERT_EQ(view.runs.size(), 1u);
    EXPECT_EQ(view.runs[0].partition_id, p42);
    total += view.runs[0].count;
  }
  EXPECT_EQ(total, 10'000u);
}

TEST(ChunkWriter, ChunksRespectBufferSize) {
  auto r = gen(50'000, 10'000, 4);
  auto parts = join::radix_cluster(r.tuples(), 8, 8);
  for (const std::size_t buffer : {1024UL, 4096UL, 65536UL}) {
    ChunkWriter writer(buffer);
    ChunkSlab slab = writer.from_partitioned(parts, 0);
    for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
      EXPECT_LE(slab.chunk(c).size(), buffer);
    }
  }
}

TEST(ChunkWriter, EmptyInputYieldsNoChunks) {
  ChunkWriter writer(4096);
  EXPECT_EQ(writer.from_raw({}, 0).num_chunks(), 0u);
  EXPECT_EQ(writer.from_sorted({}, 0).num_chunks(), 0u);
  auto parts = join::radix_cluster({}, 4, 8);
  EXPECT_EQ(writer.from_partitioned(parts, 0).num_chunks(), 0u);
}

TEST(DecodeChunk, RejectsCorruptedMagic) {
  auto r = gen(100, 50, 5);
  ChunkWriter writer(4096);
  ChunkSlab slab = writer.from_raw(r.tuples(), 0);
  std::vector<std::byte> copy(slab.chunk(0).begin(), slab.chunk(0).end());
  copy[0] = std::byte{0x00};
  EXPECT_DEATH((void)decode_chunk(copy), "magic");
}

TEST(DecodeChunk, RejectsTruncatedPayload) {
  auto r = gen(100, 50, 6);
  ChunkWriter writer(4096);
  ChunkSlab slab = writer.from_raw(r.tuples(), 0);
  auto full = slab.chunk(0);
  EXPECT_DEATH((void)decode_chunk(full.subspan(0, full.size() - 1)), "length");
  EXPECT_DEATH((void)decode_chunk(full.subspan(0, 4)), "header");
}

}  // namespace
}  // namespace cj::cyclo
