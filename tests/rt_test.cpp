// Backend parity suite: the wall-clock rt backend must produce exactly the
// matches and checksum of the deterministic sim backend for the same input
// — uniform and Zipf-skewed keys, equi- and band-joins, shared rotations,
// and the crash-bypass path. Parity is structural (both backends run the
// same plan, kernels, and roundabout protocol; result merging is
// commutative), so any divergence here is a real concurrency bug, which is
// also why CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

namespace cj::cyclo {
namespace {

ClusterConfig parity_cluster(Backend backend, int hosts) {
  ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_hosts = hosts;
  cfg.cores_per_host = 2;
  cfg.node.buffer_bytes = 32 * 1024;  // small buffers → many chunks rotate
  cfg.node.num_buffers = 4;
  return cfg;
}

RunReport run_on(Backend backend, int hosts, const JoinSpec& spec,
                 const rel::Relation& r, const rel::Relation& s) {
  CycloJoin cyclo(parity_cluster(backend, hosts), spec);
  return cyclo.run(r, s);
}

/// Key skew sweep: 0 is uniform; the paper's skew experiments use Zipf.
class RtParitySkew : public ::testing::TestWithParam<double> {};

TEST_P(RtParitySkew, HashEquiJoinMatchesSim) {
  const double z = GetParam();
  auto r = rel::generate(
      {.rows = 30'000, .key_domain = 6'000, .zipf_z = z, .seed = 11}, "R", 1);
  auto s = rel::generate(
      {.rows = 30'000, .key_domain = 6'000, .zipf_z = z, .seed = 12}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};

  const RunReport sim = run_on(Backend::kSim, 4, spec, r, s);
  const RunReport rt = run_on(Backend::kRt, 4, spec, r, s);

  EXPECT_GT(sim.matches, 0u);
  EXPECT_EQ(rt.matches, sim.matches);
  EXPECT_EQ(rt.checksum, sim.checksum);
  EXPECT_EQ(rt.hosts.size(), sim.hosts.size());
  EXPECT_GT(rt.total_wall, 0);
}

TEST_P(RtParitySkew, SortMergeBandJoinMatchesSim) {
  const double z = GetParam();
  auto r = rel::generate(
      {.rows = 12'000, .key_domain = 20'000, .zipf_z = z, .seed = 21}, "R", 1);
  auto s = rel::generate(
      {.rows = 12'000, .key_domain = 20'000, .zipf_z = z, .seed = 22}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kSortMergeJoin, .band = 5};

  const RunReport sim = run_on(Backend::kSim, 3, spec, r, s);
  const RunReport rt = run_on(Backend::kRt, 3, spec, r, s);

  EXPECT_GT(sim.matches, 0u);
  EXPECT_EQ(rt.matches, sim.matches);
  EXPECT_EQ(rt.checksum, sim.checksum);
}

INSTANTIATE_TEST_SUITE_P(Skew, RtParitySkew,
                         ::testing::Values(0.0, 0.5, 1.0, 1.25));

TEST(RtParity, SingleHostDegeneratesToLocalJoin) {
  auto r = rel::generate({.rows = 10'000, .key_domain = 2'500, .seed = 5}, "R", 1);
  auto s = rel::generate({.rows = 10'000, .key_domain = 2'500, .seed = 6}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};

  const RunReport sim = run_on(Backend::kSim, 1, spec, r, s);
  const RunReport rt = run_on(Backend::kRt, 1, spec, r, s);

  EXPECT_EQ(rt.matches, sim.matches);
  EXPECT_EQ(rt.checksum, sim.checksum);
  EXPECT_EQ(rt.bytes_on_wire, 0u);
}

TEST(RtParity, SharedRotationMatchesSimPerQuery) {
  auto r = rel::generate({.rows = 24'000, .key_domain = 5'000, .seed = 31}, "R", 1);
  auto s1 = rel::generate({.rows = 9'000, .key_domain = 5'000, .seed = 32}, "S1", 2);
  auto s2 = rel::generate({.rows = 9'000, .key_domain = 5'000, .seed = 33}, "S2", 3);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};
  const std::vector<SharedQuery> queries{SharedQuery{.stationary = &s1},
                                         SharedQuery{.stationary = &s2}};

  CycloJoin sim_cyclo(parity_cluster(Backend::kSim, 4), spec);
  const SharedRunReport sim = sim_cyclo.run_shared(r, queries);
  CycloJoin rt_cyclo(parity_cluster(Backend::kRt, 4), spec);
  const SharedRunReport rt = rt_cyclo.run_shared(r, queries);

  ASSERT_EQ(rt.queries.size(), sim.queries.size());
  for (std::size_t q = 0; q < sim.queries.size(); ++q) {
    EXPECT_EQ(rt.queries[q].matches, sim.queries[q].matches) << "query " << q;
    EXPECT_EQ(rt.queries[q].checksum, sim.queries[q].checksum) << "query " << q;
  }
  EXPECT_EQ(rt.matches, sim.matches);
  EXPECT_EQ(rt.checksum, sim.checksum);
}

TEST(RtParity, TaggedSharedRotationBillsPerQueryOnBothBackends) {
  auto r = rel::generate({.rows = 16'000, .key_domain = 4'000, .seed = 35}, "R", 1);
  auto s1 = rel::generate({.rows = 8'000, .key_domain = 4'000, .seed = 36}, "S1", 2);
  auto s2 = rel::generate({.rows = 8'000, .key_domain = 4'000, .seed = 37}, "S2", 3);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};
  const std::vector<SharedQuery> queries{
      SharedQuery{.stationary = &s1, .tag = "q7"},
      SharedQuery{.stationary = &s2, .tag = "q8"}};

  CycloJoin sim_cyclo(parity_cluster(Backend::kSim, 3), spec);
  const SharedRunReport sim = sim_cyclo.run_shared(r, queries);
  CycloJoin rt_cyclo(parity_cluster(Backend::kRt, 3), spec);
  const SharedRunReport rt = rt_cyclo.run_shared(r, queries);

  // Tags change accounting only, never results: per-query parity holds and
  // both backends bill core-busy time to the per-query counters.
  ASSERT_EQ(rt.queries.size(), sim.queries.size());
  for (std::size_t q = 0; q < sim.queries.size(); ++q) {
    EXPECT_EQ(rt.queries[q].matches, sim.queries[q].matches) << "query " << q;
    EXPECT_EQ(rt.queries[q].checksum, sim.queries[q].checksum) << "query " << q;
  }
  for (const SharedRunReport* report : {&sim, &rt}) {
    const auto& counters = report->metrics.counters;
    ASSERT_TRUE(counters.contains("busy.q7"));
    ASSERT_TRUE(counters.contains("busy.q8"));
    EXPECT_GT(counters.at("busy.q7"), 0);
    EXPECT_GT(counters.at("busy.q8"), 0);
    EXPECT_FALSE(counters.contains("busy.join"));
  }
}

// ----- crash bypass ---------------------------------------------------------

// The degraded answer depends only on WHICH host died, never on when the
// crash landed relative to the rotation: survivors retract the dead host's
// R buckets and its S fragment wholesale. Crashing at t=0 on both backends
// therefore must yield identical survivor sets, lost-row accounting, and
// degraded checksums even though the rt rotation interleaves differently.
TEST(RtFault, CrashBypassMatchesSimSurvivorsAndDegradedChecksum) {
  const int hosts = 4;
  const int dead = 2;
  auto r = rel::generate({.rows = 24'000, .key_domain = 5'000, .seed = 41}, "R", 1);
  auto s = rel::generate({.rows = 24'000, .key_domain = 5'000, .seed = 42}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};

  ClusterConfig sim_cfg = parity_cluster(Backend::kSim, hosts);
  sim_cfg.fault.crashes.push_back({.host = dead, .at = 0});
  ClusterConfig rt_cfg = parity_cluster(Backend::kRt, hosts);
  rt_cfg.fault.crashes.push_back({.host = dead, .at = 0});

  const RunReport sim = CycloJoin(sim_cfg, spec).run(r, s);
  const RunReport rt = CycloJoin(rt_cfg, spec).run(r, s);

  ASSERT_TRUE(sim.fault.degraded);
  ASSERT_TRUE(rt.fault.degraded);
  EXPECT_EQ(rt.fault.crashed_hosts, sim.fault.crashed_hosts);
  EXPECT_EQ(rt.fault.lost_r_rows, sim.fault.lost_r_rows);
  EXPECT_EQ(rt.fault.lost_s_rows, sim.fault.lost_s_rows);
  EXPECT_EQ(rt.matches, sim.matches);
  EXPECT_EQ(rt.checksum, sim.checksum);
  // No lossy transport on the rt backend: every fault counter besides the
  // crash accounting is structurally zero.
  EXPECT_EQ(rt.fault.messages_dropped, 0u);
  EXPECT_EQ(rt.fault.corrupt_discards, 0u);
}

// With replication on, a real-thread crash recovers the EXACT join: the
// rt result must equal the crash-free answer bit for bit, not the degraded
// survivor join. This is the strongest parity statement in the suite —
// adoption, replica promotion and replay all run on live engine threads.
TEST(RtFault, ReplicatedCrashRecoversExactJoinOnBothBackends) {
  const int hosts = 4;
  const int dead = 2;
  auto r = rel::generate({.rows = 24'000, .key_domain = 5'000, .seed = 41}, "R", 1);
  auto s = rel::generate({.rows = 24'000, .key_domain = 5'000, .seed = 42}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};

  const RunReport clean = run_on(Backend::kSim, hosts, spec, r, s);

  for (const Backend backend : {Backend::kSim, Backend::kRt}) {
    ClusterConfig cfg = parity_cluster(backend, hosts);
    cfg.fault.crashes.push_back({.host = dead, .at = 0});
    cfg.node.resilience.replicate = true;
    if (backend == Backend::kSim) {
      cfg.node.resilience.ack_timeout = 20 * kMillisecond;
    }
    const RunReport report = CycloJoin(cfg, spec).run(r, s);

    const char* which = backend == Backend::kSim ? "sim" : "rt";
    ASSERT_TRUE(report.fault.recovered) << which;
    EXPECT_FALSE(report.fault.degraded) << which;
    EXPECT_EQ(report.fault.lost_r_rows, 0u) << which;
    EXPECT_EQ(report.fault.lost_s_rows, 0u) << which;
    EXPECT_EQ(report.fault.adopter, (dead + 1) % hosts) << which;
    EXPECT_GT(report.fault.replica_bytes, 0u) << which;
    EXPECT_EQ(report.matches, clean.matches) << which;
    EXPECT_EQ(report.checksum, clean.checksum) << which;
  }
}

// Band joins recover too: the adopted partition is re-sorted from the
// replica and the sort-merge kernel runs against it on the adopter.
TEST(RtFault, ReplicatedCrashRecoversBandJoin) {
  auto r = rel::generate(
      {.rows = 12'000, .key_domain = 20'000, .zipf_z = 1.0, .seed = 21}, "R", 1);
  auto s = rel::generate(
      {.rows = 12'000, .key_domain = 20'000, .zipf_z = 1.0, .seed = 22}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kSortMergeJoin, .band = 5};

  const RunReport clean = run_on(Backend::kSim, 3, spec, r, s);

  ClusterConfig cfg = parity_cluster(Backend::kRt, 3);
  cfg.fault.crashes.push_back({.host = 1, .at = 0});
  cfg.node.resilience.replicate = true;
  const RunReport rt = CycloJoin(cfg, spec).run(r, s);

  ASSERT_TRUE(rt.fault.recovered);
  EXPECT_EQ(rt.matches, clean.matches);
  EXPECT_EQ(rt.checksum, clean.checksum);
}

// Replication off: the rt crash keeps its PR-1 degraded contract, so
// enabling the feature elsewhere cannot have changed the default path.
TEST(RtFault, ReplicationOffKeepsDegradedContract) {
  const int hosts = 4;
  const int dead = 2;
  auto r = rel::generate({.rows = 24'000, .key_domain = 5'000, .seed = 41}, "R", 1);
  auto s = rel::generate({.rows = 24'000, .key_domain = 5'000, .seed = 42}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};

  ClusterConfig sim_cfg = parity_cluster(Backend::kSim, hosts);
  sim_cfg.fault.crashes.push_back({.host = dead, .at = 0});
  ClusterConfig rt_cfg = parity_cluster(Backend::kRt, hosts);
  rt_cfg.fault.crashes.push_back({.host = dead, .at = 0});

  const RunReport sim = CycloJoin(sim_cfg, spec).run(r, s);
  const RunReport rt = CycloJoin(rt_cfg, spec).run(r, s);

  ASSERT_TRUE(rt.fault.degraded);
  EXPECT_FALSE(rt.fault.recovered);
  EXPECT_EQ(rt.matches, sim.matches);
  EXPECT_EQ(rt.checksum, sim.checksum);
}

// The adaptive ack-timeout policy is always on for rt: after enough clean
// acks every host's effective timeout tightens below the 200 ms floor-era
// static clamp, and the RTT histogram is populated.
TEST(RtFault, AdaptiveTimeoutGaugesAndRttsSurface) {
  auto r = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 51}, "R", 1);
  auto s = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 52}, "S", 2);

  ClusterConfig cfg = parity_cluster(Backend::kRt, 3);
  // Arm resilient mode without a fault landing: the crash is scheduled an
  // hour out, far past any realistic run (rt rejects slowdown faults).
  cfg.fault.crashes.push_back({.host = 1, .at = 3600LL * 1'000'000'000LL});

  const RunReport report =
      CycloJoin(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin}).run(r, s);

  EXPECT_FALSE(report.fault.degraded);
  EXPECT_EQ(report.fault.chunks_reinjected, 0u);
  EXPECT_TRUE(report.metrics.histograms.count("ack_rtt_ns") != 0U);
  for (int i = 0; i < 3; ++i) {
    const std::string key = "host" + std::to_string(i) + ".ack_timeout_ns";
    ASSERT_TRUE(report.metrics.gauges.count(key) != 0U) << key;
    EXPECT_GT(report.metrics.gauges.at(key), 0.0) << key;
  }
}

// A crash scheduled after the run completes must leave the rt result
// undegraded and identical to the crash-free sim answer (the watcher
// stands down when the detector finishes first).
TEST(RtFault, CrashAfterCompletionIsHarmless) {
  auto r = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 51}, "R", 1);
  auto s = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 52}, "S", 2);
  const JoinSpec spec{.algorithm = Algorithm::kHashJoin};

  const RunReport sim = run_on(Backend::kSim, 3, spec, r, s);

  ClusterConfig rt_cfg = parity_cluster(Backend::kRt, 3);
  rt_cfg.fault.crashes.push_back({.host = 1, .at = 3600LL * 1'000'000'000LL});
  const RunReport rt = CycloJoin(rt_cfg, spec).run(r, s);

  EXPECT_FALSE(rt.fault.degraded);
  EXPECT_EQ(rt.matches, sim.matches);
  EXPECT_EQ(rt.checksum, sim.checksum);
}

// Observability rides along on the rt backend: wall-clock traces and
// metrics come from the same obs layer, with per-host engines feeding one
// shared (internally locked) tracer.
TEST(RtObs, TraceAndMetricsPopulated) {
  auto r = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 61}, "R", 1);
  auto s = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 62}, "S", 2);
  ClusterConfig cfg = parity_cluster(Backend::kRt, 3);
  cfg.trace.enabled = true;

  const RunReport report =
      CycloJoin(cfg, JoinSpec{.algorithm = Algorithm::kHashJoin}).run(r, s);

  ASSERT_NE(report.trace, nullptr);
  EXPECT_FALSE(report.trace->events().empty());
  EXPECT_GT(report.metrics.counters.at("chunks_rotated"), 0);
  EXPECT_GT(report.metrics.counters.at("bytes_on_wire"), 0);
}

}  // namespace
}  // namespace cj::cyclo
