// Unit tests for the local join kernels: radix clustering, hash tables,
// hash join, sort-merge (equi + band), nested loops, and cross-validation
// of all algorithms against each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "join/hash_join.h"
#include "join/local_join.h"
#include "join/nested_loops.h"
#include "join/radix.h"
#include "join/simd.h"
#include "join/sort_merge.h"
#include "rel/generator.h"

namespace cj::join {
namespace {

rel::Relation gen(std::uint64_t rows, std::uint64_t domain, std::uint64_t seed,
                  double zipf = 0.0) {
  return rel::generate(
      {.rows = rows, .key_domain = domain, .zipf_z = zipf, .seed = seed}, "t",
      seed);
}

// ----------------------------------------------------------------- radix

TEST(Radix, ChooseBitsFitsCacheBudget) {
  // The footprint per S tuple is derived from the active table layout
  // (PartitionHashTable::bytes_per_stationary_tuple), so size the budget
  // from the same source instead of hard-coding layout constants: a budget
  // of exactly 1024 tuples must split 1000 tuples into one partition,
  // 2000 into two, and so on.
  RadixConfig config;
  const std::size_t group_bpt =
      PartitionHashTable::bytes_per_stationary_tuple(config.kernel);
  config.cache_budget_bytes = group_bpt * 1024;
  EXPECT_EQ(choose_radix_bits(1000, config), 0);
  EXPECT_EQ(choose_radix_bits(2000, config), 1);
  EXPECT_EQ(choose_radix_bits(4000, config), 2);
  EXPECT_EQ(choose_radix_bits(1 << 20, config), 10);

  RadixConfig legacy;
  legacy.kernel = KernelConfig::legacy();
  const std::size_t legacy_bpt =
      PartitionHashTable::bytes_per_stationary_tuple(legacy.kernel);
  EXPECT_LT(legacy_bpt, group_bpt);  // chained layout is denser per tuple
  legacy.cache_budget_bytes = legacy_bpt * 1024;
  EXPECT_EQ(choose_radix_bits(1000, legacy), 0);
  EXPECT_EQ(choose_radix_bits(2000, legacy), 1);
  EXPECT_EQ(choose_radix_bits(4000, legacy), 2);
  EXPECT_EQ(choose_radix_bits(1 << 20, legacy), 10);
}

TEST(Radix, ChooseBitsRespectsMaxBits) {
  RadixConfig config;
  config.cache_budget_bytes = 24;
  config.max_bits = 5;
  EXPECT_EQ(choose_radix_bits(1'000'000'000, config), 5);
}

TEST(Radix, ZeroBitsIsIdentity) {
  auto r = gen(100, 50, 1);
  auto parts = radix_cluster(r.tuples(), 0, 8);
  EXPECT_EQ(parts.num_partitions(), 1u);
  EXPECT_TRUE(std::equal(r.tuples().begin(), r.tuples().end(),
                         parts.partition(0).begin()));
}

class RadixClusterBits : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RadixClusterBits, EveryTupleLandsInItsPartition) {
  const auto [total_bits, bits_per_pass] = GetParam();
  auto r = gen(20'000, 5'000, 2);
  auto parts = radix_cluster(r.tuples(), total_bits, bits_per_pass);

  EXPECT_EQ(parts.rows(), r.rows());
  EXPECT_EQ(parts.num_partitions(), 1u << total_bits);
  std::uint64_t seen = 0;
  for (std::uint32_t p = 0; p < parts.num_partitions(); ++p) {
    for (const auto& t : parts.partition(p)) {
      EXPECT_EQ(partition_of(t.key, total_bits), p);
      ++seen;
    }
  }
  EXPECT_EQ(seen, r.rows());
}

TEST_P(RadixClusterBits, IsAPermutationOfTheInput) {
  const auto [total_bits, bits_per_pass] = GetParam();
  auto r = gen(10'000, 3'000, 3);
  auto parts = radix_cluster(r.tuples(), total_bits, bits_per_pass);

  std::multiset<std::uint64_t> in, out;
  // uint64_t{...}: packed Tuple — a const& straight to the offset-4 payload
  // member would be a misaligned reference (UB).
  for (const auto& t : r.tuples()) in.insert(std::uint64_t{t.payload});
  for (const auto& t : parts.all_tuples()) out.insert(std::uint64_t{t.payload});
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(BitCombos, RadixClusterBits,
                         ::testing::Values(std::tuple{1, 8}, std::tuple{4, 8},
                                           std::tuple{8, 8}, std::tuple{10, 4},
                                           std::tuple{12, 5}, std::tuple{14, 8},
                                           std::tuple{9, 3}));

TEST(Radix, MultiPassEqualsSinglePass) {
  auto r = gen(30'000, 10'000, 4);
  auto one_pass = radix_cluster(r.tuples(), 10, 16);
  auto multi_pass = radix_cluster(r.tuples(), 10, 4);
  // Same partition directory; tuple order within a partition may differ
  // between pass structures, so compare partition contents as multisets.
  ASSERT_EQ(one_pass.offsets().size(), multi_pass.offsets().size());
  for (std::size_t i = 0; i < one_pass.offsets().size(); ++i) {
    EXPECT_EQ(one_pass.offsets()[i], multi_pass.offsets()[i]);
  }
  for (std::uint32_t p = 0; p < one_pass.num_partitions(); ++p) {
    std::multiset<std::uint64_t> a, b;
    for (const auto& t : one_pass.partition(p)) a.insert(std::uint64_t{t.payload});
    for (const auto& t : multi_pass.partition(p)) b.insert(std::uint64_t{t.payload});
    EXPECT_EQ(a, b);
  }
}

TEST(Radix, EmptyInput) {
  auto parts = radix_cluster({}, 4, 8);
  EXPECT_EQ(parts.rows(), 0u);
  EXPECT_EQ(parts.num_partitions(), 16u);
  for (std::uint32_t p = 0; p < 16; ++p) EXPECT_TRUE(parts.partition(p).empty());
}

// ------------------------------------------------------------ hash table

TEST(PartitionHashTable, FindsAllDuplicates) {
  std::vector<rel::Tuple> s = {{5, 1}, {5, 2}, {7, 3}, {5, 4}};
  PartitionHashTable table;
  table.build(s, 0);
  std::vector<rel::Tuple> r = {{5, 100}};
  JoinResult result;
  table.probe(r, result);
  EXPECT_EQ(result.matches(), 3u);
}

TEST(PartitionHashTable, EmptyTableProducesNoMatches) {
  PartitionHashTable table;
  table.build({}, 0);
  std::vector<rel::Tuple> r = {{1, 1}, {2, 2}};
  JoinResult result;
  table.probe(r, result);
  EXPECT_EQ(result.matches(), 0u);
}

TEST(PartitionHashTable, NoFalseMatches) {
  std::vector<rel::Tuple> s;
  for (std::uint32_t i = 0; i < 1000; i += 2) s.push_back({i, i});
  PartitionHashTable table;
  table.build(s, 0);
  std::vector<rel::Tuple> r;
  for (std::uint32_t i = 1; i < 1000; i += 2) r.push_back({i, i});
  JoinResult result;
  table.probe(r, result);  // disjoint odd vs even keys
  EXPECT_EQ(result.matches(), 0u);
}

// ---------------------------------------------------------- merge joins

TEST(MergeJoin, HandlesDuplicateGroupsOnBothSides) {
  std::vector<rel::Tuple> r = {{1, 1}, {2, 2}, {2, 3}, {4, 4}};
  std::vector<rel::Tuple> s = {{2, 10}, {2, 11}, {2, 12}, {4, 13}, {5, 14}};
  JoinResult result(true);
  merge_join(r, s, result);
  EXPECT_EQ(result.matches(), 2u * 3u + 1u);
}

TEST(MergeJoin, EmptySides) {
  std::vector<rel::Tuple> r = {{1, 1}};
  JoinResult a, b, c;
  merge_join({}, r, a);
  merge_join(r, {}, b);
  merge_join({}, {}, c);
  EXPECT_EQ(a.matches() + b.matches() + c.matches(), 0u);
}

TEST(BandMergeJoin, ZeroBandEqualsEquiJoin) {
  auto r = gen(3'000, 500, 5);
  auto s = gen(3'000, 500, 6);
  std::vector<rel::Tuple> rs(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> ss(s.tuples().begin(), s.tuples().end());
  sort_fragment(rs);
  sort_fragment(ss);
  JoinResult equi, band;
  merge_join(rs, ss, equi);
  band_merge_join(rs, ss, 0, band);
  EXPECT_EQ(equi.matches(), band.matches());
  EXPECT_EQ(equi.checksum(), band.checksum());
}

TEST(BandMergeJoin, MatchesOracleAcrossBands) {
  auto r = gen(800, 300, 7);
  auto s = gen(800, 300, 8);
  std::vector<rel::Tuple> rs(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> ss(s.tuples().begin(), s.tuples().end());
  sort_fragment(rs);
  sort_fragment(ss);
  for (std::uint32_t band : {1u, 2u, 10u, 50u}) {
    JoinResult got, oracle;
    band_merge_join(rs, ss, band, got);
    nested_loops_band_join(r.tuples(), s.tuples(), band, oracle);
    EXPECT_EQ(got.matches(), oracle.matches()) << "band " << band;
    EXPECT_EQ(got.checksum(), oracle.checksum()) << "band " << band;
  }
}

TEST(BandMergeJoin, KeySpaceBoundariesDoNotOverflow) {
  // Keys at the extremes of the 32-bit space; the band math must saturate.
  std::vector<rel::Tuple> r = {{0, 1}, {0xFFFFFFFF, 2}};
  std::vector<rel::Tuple> s = {{1, 10}, {0xFFFFFFFE, 20}};
  JoinResult got, oracle;
  band_merge_join(r, s, 5, got);
  nested_loops_band_join(r, s, 5, oracle);
  EXPECT_EQ(got.matches(), oracle.matches());
  EXPECT_EQ(got.checksum(), oracle.checksum());
}

TEST(MatchingWindow, BoundsTheMergeInput) {
  std::vector<rel::Tuple> s;
  for (std::uint32_t i = 0; i < 100; ++i) s.push_back({i * 10, i});
  auto window = matching_window(s, 200, 300, 0);
  ASSERT_FALSE(window.empty());
  EXPECT_EQ(window.front().key, 200u);
  EXPECT_EQ(window.back().key, 300u);

  auto banded = matching_window(s, 200, 300, 15);
  EXPECT_EQ(banded.front().key, 190u);
  EXPECT_EQ(banded.back().key, 310u);

  auto empty = matching_window(s, 2000, 3000, 0);
  EXPECT_TRUE(empty.empty());
}

// --------------------------------------------------- algorithm agreement

struct JoinCase {
  std::uint64_t rows;
  std::uint64_t domain;
  double zipf;
};

class AlgorithmsAgree : public ::testing::TestWithParam<JoinCase> {};

TEST_P(AlgorithmsAgree, HashSortMergeAndOracleMatch) {
  const JoinCase c = GetParam();
  auto r = gen(c.rows, c.domain, 11, c.zipf);
  auto s = gen(c.rows, c.domain, 12, c.zipf);

  JoinResult oracle;
  nested_loops_equi_join(r.tuples(), s.tuples(), oracle);
  auto hash = local_hash_join(r.tuples(), s.tuples());
  auto merge = local_sort_merge_join(r.tuples(), s.tuples());

  EXPECT_EQ(hash.matches(), oracle.matches());
  EXPECT_EQ(hash.checksum(), oracle.checksum());
  EXPECT_EQ(merge.matches(), oracle.matches());
  EXPECT_EQ(merge.checksum(), oracle.checksum());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AlgorithmsAgree,
    ::testing::Values(JoinCase{100, 10, 0.0},       // heavy duplication
                      JoinCase{1'000, 1'000, 0.0},  // ~unique keys
                      JoinCase{2'000, 200, 0.0},    // 10x duplication
                      JoinCase{2'000, 2'000, 0.9},  // skewed
                      JoinCase{2'000, 2'000, 1.2},  // heavily skewed
                      JoinCase{1, 1, 0.0},          // single row
                      JoinCase{3'000, 1u << 31, 0.0}));  // sparse domain

TEST(LocalJoin, DisjointInputsYieldNothing) {
  rel::Relation r("r"), s("s");
  for (std::uint32_t i = 0; i < 1000; ++i) r.push_back({i, i});
  for (std::uint32_t i = 2000; i < 3000; ++i) s.push_back({i, i});
  EXPECT_EQ(local_hash_join(r.tuples(), s.tuples()).matches(), 0u);
  EXPECT_EQ(local_sort_merge_join(r.tuples(), s.tuples()).matches(), 0u);
}

TEST(LocalJoin, CrossProductOnSingleKey) {
  rel::Relation r("r"), s("s");
  for (std::uint64_t i = 0; i < 100; ++i) r.push_back({7, i});
  for (std::uint64_t i = 0; i < 50; ++i) s.push_back({7, 1000 + i});
  EXPECT_EQ(local_hash_join(r.tuples(), s.tuples()).matches(), 5000u);
  EXPECT_EQ(local_sort_merge_join(r.tuples(), s.tuples()).matches(), 5000u);
}

TEST(LocalJoin, TimingPhasesAreReported) {
  auto r = gen(50'000, 10'000, 13);
  auto s = gen(50'000, 10'000, 14);
  LocalJoinTiming ht{}, mt{};
  (void)local_hash_join(r.tuples(), s.tuples(), {}, &ht);
  (void)local_sort_merge_join(r.tuples(), s.tuples(), 0, &mt);
  EXPECT_GT(ht.setup_ns, 0);
  EXPECT_GT(ht.join_ns, 0);
  EXPECT_GT(mt.setup_ns, 0);
  EXPECT_GT(mt.join_ns, 0);
}

TEST(LocalJoin, MaterializedOutputMatchesCount) {
  auto r = gen(500, 100, 15);
  auto s = gen(500, 100, 16);
  auto res = local_hash_join(r.tuples(), s.tuples(), {}, nullptr, true);
  EXPECT_EQ(res.output().size(), res.matches());
  // Every materialized row must actually be a key match.
  std::map<std::uint64_t, std::uint32_t> r_keys;
  for (const auto& t : r.tuples()) r_keys[std::uint64_t{t.payload}] = t.key;
  for (const auto& out : res.output()) {
    EXPECT_EQ(r_keys.at(out.r_payload), out.key);
  }
}

TEST(SingleTableHashJoin, AgreesWithRadixJoin) {
  auto r = gen(30'000, 8'000, 21);
  auto s = gen(30'000, 8'000, 22);
  const int bits = choose_radix_bits(s.rows(), {});
  const auto radix = HashJoinStationary::build(s.tuples(), bits);
  const auto r_parts = radix_cluster(r.tuples(), bits, 8);
  JoinResult a, b;
  for (std::uint32_t p = 0; p < r_parts.num_partitions(); ++p) {
    radix.probe_partition(p, r_parts.partition(p), a);
  }
  SingleTableHashJoin::build(s.tuples()).probe(r.tuples(), b);
  EXPECT_EQ(a.matches(), b.matches());
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(SingleTableHashJoin, EmptyStationary) {
  auto r = gen(100, 50, 23);
  JoinResult result;
  SingleTableHashJoin::build({}).probe(r.tuples(), result);
  EXPECT_EQ(result.matches(), 0u);
}

TEST(JoinResult, MergeAccumulates) {
  JoinResult a, b;
  rel::Tuple t1{1, 10}, t2{1, 20};
  a.add_match(t1, t2);
  b.add_match(t2, t1);
  const auto a_sum = a.checksum();
  a.merge(b);
  EXPECT_EQ(a.matches(), 2u);
  EXPECT_NE(a.checksum(), a_sum);
}

TEST(JoinResult, ChecksumIsOrderIndependentButPairingSensitive) {
  rel::Tuple r1{1, 10}, r2{1, 20}, s1{1, 30}, s2{1, 40};
  JoinResult ab, ba, crossed;
  ab.add_match(r1, s1);
  ab.add_match(r2, s2);
  ba.add_match(r2, s2);
  ba.add_match(r1, s1);
  crossed.add_match(r1, s2);
  crossed.add_match(r2, s1);
  EXPECT_EQ(ab.checksum(), ba.checksum());
  EXPECT_NE(ab.checksum(), crossed.checksum());
}

// ------------------------------------------------- kernel checksum parity
//
// The cache-conscious kernels (docs/KERNELS.md) must be bit-identical in
// *result* to the legacy kernels and the nested-loops oracle — the
// order-independent checksum catches any dropped, duplicated or miscrossed
// match. Swept over skew, radix-bit settings (including 0 = no clustering)
// and pass shapes.

JoinResult hash_join_with(std::span<const rel::Tuple> r,
                          std::span<const rel::Tuple> s, int bits,
                          const KernelConfig& kernel, int bits_per_pass = 8) {
  RadixConfig config;
  config.kernel = kernel;
  config.bits_per_pass = bits_per_pass;
  const auto stationary = HashJoinStationary::build(s, bits, config);
  const auto r_parts = radix_cluster(r, bits, bits_per_pass, kernel);
  JoinResult result;
  for (std::uint32_t p = 0; p < r_parts.num_partitions(); ++p) {
    stationary.probe_partition(p, r_parts.partition(p), result);
  }
  return result;
}

struct KernelParityCase {
  double zipf;
  int radix_bits;
};

class KernelParity : public ::testing::TestWithParam<KernelParityCase> {};

TEST_P(KernelParity, OptimizedLegacyAndOracleAgreeOnEqui) {
  const auto [zipf, bits] = GetParam();
  auto r = gen(3'000, 900, 31, zipf);
  auto s = gen(3'000, 900, 32, zipf);

  JoinResult oracle;
  nested_loops_equi_join(r.tuples(), s.tuples(), oracle);
  const auto legacy =
      hash_join_with(r.tuples(), s.tuples(), bits, KernelConfig::legacy());
  const auto optimized = hash_join_with(r.tuples(), s.tuples(), bits, {});

  EXPECT_EQ(legacy.matches(), oracle.matches());
  EXPECT_EQ(legacy.checksum(), oracle.checksum());
  EXPECT_EQ(optimized.matches(), oracle.matches());
  EXPECT_EQ(optimized.checksum(), oracle.checksum());
}

TEST_P(KernelParity, BandJoinAgreesWithOracle) {
  const auto [zipf, band_width] = GetParam();  // reuse the int as the band
  auto r = gen(1'200, 400, 33, zipf);
  auto s = gen(1'200, 400, 34, zipf);
  std::vector<rel::Tuple> rs(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> ss(s.tuples().begin(), s.tuples().end());
  sort_fragment(rs);
  sort_fragment(ss);

  const auto band = static_cast<std::uint32_t>(band_width);
  JoinResult got, oracle;
  band_merge_join(rs, ss, band, got);
  nested_loops_band_join(r.tuples(), s.tuples(), band, oracle);
  EXPECT_EQ(got.matches(), oracle.matches());
  EXPECT_EQ(got.checksum(), oracle.checksum());
}

INSTANTIATE_TEST_SUITE_P(
    SkewAndBits, KernelParity,
    ::testing::Values(KernelParityCase{0.0, 0}, KernelParityCase{0.0, 4},
                      KernelParityCase{0.0, 9}, KernelParityCase{0.5, 0},
                      KernelParityCase{0.5, 6}, KernelParityCase{1.0, 0},
                      KernelParityCase{1.0, 4}, KernelParityCase{1.0, 9},
                      KernelParityCase{1.25, 0}, KernelParityCase{1.25, 6}));

TEST(KernelParity, EveryKnobCombinationAgrees) {
  auto r = gen(5'000, 1'500, 35, 0.8);
  auto s = gen(5'000, 1'500, 36, 0.8);
  JoinResult oracle;
  nested_loops_equi_join(r.tuples(), s.tuples(), oracle);

  for (const bool cache_hashes : {false, true}) {
    for (const bool buffered : {false, true}) {
      for (const bool fingerprint : {false, true}) {
        for (const int prefetch : {0, 1, 8, 64, 1'000}) {  // 1000 → clamped
          const KernelConfig kernel{.cache_hashes = cache_hashes,
                                    .buffered_scatter = buffered,
                                    .fingerprint_table = fingerprint,
                                    .prefetch_distance = prefetch};
          const auto got = hash_join_with(r.tuples(), s.tuples(), 5, kernel);
          EXPECT_EQ(got.matches(), oracle.matches());
          EXPECT_EQ(got.checksum(), oracle.checksum());
        }
      }
    }
  }
}

TEST(KernelParity, ClusteringKernelsProduceTheSameDirectory) {
  auto r = gen(40'000, 9'000, 37, 0.6);
  for (const auto& [bits, per_pass] : {std::pair{5, 8}, std::pair{10, 8},
                                       std::pair{12, 5}, std::pair{8, 3}}) {
    const auto legacy =
        radix_cluster(r.tuples(), bits, per_pass, KernelConfig::legacy());
    const auto fast = radix_cluster(r.tuples(), bits, per_pass, {});
    ASSERT_EQ(legacy.offsets().size(), fast.offsets().size());
    for (std::size_t i = 0; i < legacy.offsets().size(); ++i) {
      EXPECT_EQ(legacy.offsets()[i], fast.offsets()[i]);
    }
    for (std::uint32_t p = 0; p < legacy.num_partitions(); ++p) {
      std::multiset<std::uint64_t> a, b;
      for (const auto& t : legacy.partition(p)) a.insert(std::uint64_t{t.payload});
      for (const auto& t : fast.partition(p)) b.insert(std::uint64_t{t.payload});
      EXPECT_EQ(a, b) << "partition " << p << " bits " << bits;
    }
  }
}

TEST(KernelParity, SingleTableLayoutsAgree) {
  auto r = gen(20'000, 6'000, 38, 0.5);
  auto s = gen(20'000, 6'000, 39, 0.5);
  JoinResult chained, fingerprinted;
  SingleTableHashJoin::build(s.tuples(), KernelConfig::legacy())
      .probe(r.tuples(), chained);
  SingleTableHashJoin::build(s.tuples()).probe(r.tuples(), fingerprinted);
  EXPECT_EQ(chained.matches(), fingerprinted.matches());
  EXPECT_EQ(chained.checksum(), fingerprinted.checksum());
}

// ------------------------------------------- dispatch-tier checksum parity
//
// The SIMD tiers (scalar/AVX2/NEON, at both group sizes) must be
// bit-identical in result: same matches, same order-independent checksum,
// against the nested-loops oracle. Tiers the running machine cannot
// execute are skipped (resolve_simd would silently degrade them to scalar,
// which the scalar cases already cover).

SimdTier tier_for(Simd request) {
  switch (request) {
    case Simd::kAvx2: return SimdTier::kAvx2;
    case Simd::kNeon: return SimdTier::kNeon;
    default: return SimdTier::kScalar;
  }
}

struct TierCase {
  Simd simd;
  int group_size;
};

class DispatchTierParity : public ::testing::TestWithParam<TierCase> {};

TEST_P(DispatchTierParity, EquiJoinAgreesWithOracleAcrossDistributions) {
  const auto [simd, group] = GetParam();
  if (!simd_tier_available(tier_for(simd))) {
    GTEST_SKIP() << "tier " << simd_tier_name(tier_for(simd))
                 << " not executable on this machine";
  }
  KernelConfig kernel{};
  kernel.simd = simd;
  kernel.group_size = group;
  // 4'097 rows: partitions of non-power-of-two size, so group counts and
  // fastrange region boundaries get no accidental alignment help.
  for (const double zipf : {0.0, 0.5, 1.0, 1.25}) {
    auto r = gen(4'097, 1'300, 41, zipf);
    auto s = gen(4'097, 1'300, 42, zipf);
    JoinResult oracle;
    nested_loops_equi_join(r.tuples(), s.tuples(), oracle);
    for (const int bits : {0, 3}) {
      const auto got = hash_join_with(r.tuples(), s.tuples(), bits, kernel);
      EXPECT_EQ(got.matches(), oracle.matches())
          << "zipf " << zipf << " bits " << bits;
      EXPECT_EQ(got.checksum(), oracle.checksum())
          << "zipf " << zipf << " bits " << bits;
    }
  }
}

TEST_P(DispatchTierParity, BandMergeJoinAgreesWithOracle) {
  const auto [simd, group] = GetParam();
  if (!simd_tier_available(tier_for(simd))) {
    GTEST_SKIP() << "tier " << simd_tier_name(tier_for(simd))
                 << " not executable on this machine";
  }
  KernelConfig kernel{};
  kernel.simd = simd;
  kernel.group_size = group;  // irrelevant to the merge scan; must be inert
  auto r = gen(2'001, 700, 45, 0.8);
  auto s = gen(2'001, 700, 46, 0.8);
  std::vector<rel::Tuple> rs(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> ss(s.tuples().begin(), s.tuples().end());
  sort_fragment(rs);
  sort_fragment(ss);
  for (const std::uint32_t band : {0u, 3u}) {
    JoinResult got, oracle;
    band_merge_join(rs, ss, band, got, kernel);
    nested_loops_band_join(r.tuples(), s.tuples(), band, oracle);
    EXPECT_EQ(got.matches(), oracle.matches()) << "band " << band;
    EXPECT_EQ(got.checksum(), oracle.checksum()) << "band " << band;
  }
}

TEST_P(DispatchTierParity, AllDuplicateKeysOverflowWalk) {
  // Every S tuple carries the same key: the home group fills, inserts walk
  // a long run of consecutive groups, and a probe must traverse the whole
  // run — the overflow walk at its most adversarial.
  const auto [simd, group] = GetParam();
  if (!simd_tier_available(tier_for(simd))) {
    GTEST_SKIP() << "tier " << simd_tier_name(tier_for(simd))
                 << " not executable on this machine";
  }
  KernelConfig kernel{};
  kernel.simd = simd;
  kernel.group_size = group;
  std::vector<rel::Tuple> s;
  for (std::uint64_t i = 0; i < 3'000; ++i) s.push_back({5, i});
  PartitionHashTable table;
  table.build(s, 0, kernel);
  const std::vector<rel::Tuple> r = {{5, 1}, {7, 2}, {9, 3}};
  JoinResult result;
  table.probe(r, result);
  EXPECT_EQ(result.matches(), 3'000u);
}

INSTANTIATE_TEST_SUITE_P(
    TiersAndGroups, DispatchTierParity,
    ::testing::Values(TierCase{Simd::kScalar, 16}, TierCase{Simd::kScalar, 8},
                      TierCase{Simd::kAvx2, 16}, TierCase{Simd::kAvx2, 8},
                      TierCase{Simd::kNeon, 16}, TierCase{Simd::kNeon, 8}));

// ------------------------------------------------ staged-build coverage
//
// Sized past kStagedBuildMinTableBytes so HashJoinStationary::build takes
// the fused region-staged path (radix_bits = 1 maximizes regions per
// partition and exercises the cross-region carry). The nested-loops oracle
// is quadratic and unusable here; the legacy chained join — itself held to
// the oracle at small sizes above — serves as the reference.

TEST(KernelParity, StagedBuildAgreesWithLegacyAtScale) {
  auto r = gen(320'000, 90'000, 43, 0.9);
  auto s = gen(320'000, 90'000, 44, 0.9);
  const auto legacy =
      hash_join_with(r.tuples(), s.tuples(), 1, KernelConfig::legacy());
  for (const int bits : {1, 6}) {
    const auto staged = hash_join_with(r.tuples(), s.tuples(), bits, {});
    EXPECT_EQ(staged.matches(), legacy.matches()) << "bits " << bits;
    EXPECT_EQ(staged.checksum(), legacy.checksum()) << "bits " << bits;
  }
}

TEST(KernelParity, StagedBuildSkewFallbackOnAllDuplicates) {
  // One key for all 320k rows: every tuple lands in one staging region,
  // whose row count blows the staged path's carry-index budget, forcing
  // the per-table skew fallback to the direct build. Parity of the result
  // (every probe of the hot key matches all |S|) is what proves the
  // fallback engaged correctly rather than corrupting the table.
  const std::uint64_t n = 320'000;
  std::vector<rel::Tuple> s;
  s.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) s.push_back({5, i});
  const std::vector<rel::Tuple> r = {{5, 1}, {7, 2}};
  RadixConfig config;
  const auto stationary = HashJoinStationary::build(s, 1, config);
  const auto r_parts = radix_cluster(r, 1, 8, config.kernel);
  JoinResult result;
  for (std::uint32_t p = 0; p < r_parts.num_partitions(); ++p) {
    stationary.probe_partition(p, r_parts.partition(p), result);
  }
  EXPECT_EQ(result.matches(), n);
}

TEST(PartitionHashTable, FingerprintFindsAllDuplicates) {
  // Heavier than the chained-layout twin above: one key's duplicates spill
  // across several collision-cluster steps.
  std::vector<rel::Tuple> s;
  for (std::uint64_t i = 0; i < 40; ++i) s.push_back({5, i});
  s.push_back({7, 100});
  PartitionHashTable table;
  table.build(s, 0);
  std::vector<rel::Tuple> r = {{5, 1}, {7, 2}, {9, 3}};
  JoinResult result;
  table.probe(r, result);
  EXPECT_EQ(result.matches(), 41u);
}

TEST(PartitionHashTable, FingerprintMaterializesCorrectPairs) {
  std::vector<rel::Tuple> s = {{1, 10}, {2, 20}, {3, 30}};
  PartitionHashTable table;
  table.build(s, 0);
  std::vector<rel::Tuple> r = {{2, 7}, {3, 8}};
  JoinResult result(true);
  table.probe(r, result);
  ASSERT_EQ(result.output().size(), 2u);
  for (const auto& out : result.output()) {
    if (out.key == 2) {
      EXPECT_EQ(out.r_payload, 7u);
      EXPECT_EQ(out.s_payload, 20u);
    } else {
      EXPECT_EQ(out.key, 3u);
      EXPECT_EQ(out.r_payload, 8u);
      EXPECT_EQ(out.s_payload, 30u);
    }
  }
}

TEST(JoinResult, CountingMergeIgnoresStaleOutput) {
  // A counting-only accumulator must not splice materialized tuples in.
  JoinResult materialized(true), counting(false);
  rel::Tuple t{1, 2};
  materialized.add_match(t, t);
  counting.merge(materialized);
  EXPECT_EQ(counting.matches(), 1u);
  EXPECT_TRUE(counting.output().empty());
}

TEST(NestedLoops, ArbitraryPredicate) {
  auto r = gen(200, 100, 17);
  auto s = gen(200, 100, 18);
  JoinResult result;
  nested_loops_join(
      r.tuples(), s.tuples(),
      [](const rel::Tuple& a, const rel::Tuple& b) { return a.key > b.key + 90; },
      result);
  std::uint64_t expected = 0;
  for (const auto& a : r.tuples()) {
    for (const auto& b : s.tuples()) expected += (a.key > b.key + 90);
  }
  EXPECT_EQ(result.matches(), expected);
}

}  // namespace
}  // namespace cj::join
