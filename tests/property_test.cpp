// Property-based sweeps: randomized configurations hammered against two
// invariants that must hold for EVERY configuration —
//
//   1. correctness: the distributed join returns exactly the single-host
//      reference's match count and order-independent checksum, and
//   2. liveness: the simulation drains completely (the engine aborts on
//      any blocked process, so credit/window protocol deadlocks cannot
//      hide).
//
// Config dimensions: ring size, buffer count/size, injection window,
// transport, algorithm, thread count, data shape (rows, domain, skew).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cyclo/cyclo_join.h"
#include "join/local_join.h"
#include "rel/generator.h"

namespace cj::cyclo {
namespace {

struct RandomConfig {
  ClusterConfig cluster;
  JoinSpec spec;
  rel::GenSpec gen_r;
  rel::GenSpec gen_s;
};

RandomConfig draw(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  RandomConfig out;

  out.cluster.num_hosts = static_cast<int>(rng.next_in(1, 8));
  out.cluster.cores_per_host = static_cast<int>(rng.next_in(1, 4));
  out.cluster.node.num_buffers = static_cast<int>(rng.next_in(2, 10));
  out.cluster.node.buffer_bytes = 1024ULL << rng.next_in(0, 6);  // 1k..64k
  out.cluster.transport =
      rng.next_below(4) == 0 ? Transport::kTcp : Transport::kRdma;
  if (rng.next_below(2) == 0) {
    out.cluster.node.injection_window = static_cast<int>(
        rng.next_in(1, static_cast<std::uint64_t>(out.cluster.node.num_buffers) - 1));
  }

  out.spec.algorithm =
      rng.next_below(2) == 0 ? Algorithm::kHashJoin : Algorithm::kSortMergeJoin;
  out.spec.join_threads = static_cast<int>(rng.next_in(1, 4));
  if (out.spec.algorithm == Algorithm::kSortMergeJoin && rng.next_below(3) == 0) {
    out.spec.band = static_cast<std::uint32_t>(rng.next_in(1, 4));
  }

  const std::uint64_t rows = rng.next_in(1, 30'000);
  const std::uint64_t domain = rng.next_in(1, rows + 10);
  const double zipf = rng.next_below(3) == 0
                          ? static_cast<double>(rng.next_in(3, 9)) / 10.0
                          : 0.0;
  out.gen_r = {.rows = rows, .key_domain = domain, .zipf_z = zipf,
               .seed = seed * 2 + 1};
  out.gen_s = {.rows = std::max<std::uint64_t>(1, rows / rng.next_in(1, 3)),
               .key_domain = domain, .zipf_z = zipf, .seed = seed * 2 + 2};
  return out;
}

class RandomizedCycloJoin : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedCycloJoin, MatchesReferenceAndDrains) {
  const RandomConfig config = draw(GetParam());
  auto r = rel::generate(config.gen_r, "R", 1);
  auto s = rel::generate(config.gen_s, "S", 2);

  join::JoinResult reference =
      config.spec.band == 0
          ? join::local_hash_join(r.tuples(), s.tuples())
          : join::local_sort_merge_join(r.tuples(), s.tuples(), config.spec.band);

  CycloJoin cyclo(config.cluster, config.spec);
  const RunReport report = cyclo.run(r, s);  // aborts on any stuck process

  EXPECT_EQ(report.matches, reference.matches())
      << "hosts=" << config.cluster.num_hosts
      << " buffers=" << config.cluster.node.num_buffers
      << " buffer_bytes=" << config.cluster.node.buffer_bytes
      << " window=" << config.cluster.node.injection_window
      << " tcp=" << (config.cluster.transport == Transport::kTcp)
      << " algo=" << static_cast<int>(config.spec.algorithm)
      << " band=" << config.spec.band << " rows=" << config.gen_r.rows;
  EXPECT_EQ(report.checksum, reference.checksum());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedCycloJoin,
                         ::testing::Range<std::uint64_t>(0, 60));

// Dimension-focused sweeps (deterministic, not random): each sweep pins
// everything except one dimension, making failures easy to localize.

class BufferCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(BufferCountSweep, TinyBufferPoolsStayLive) {
  ClusterConfig cluster;
  cluster.num_hosts = 5;
  cluster.node.num_buffers = GetParam();
  cluster.node.buffer_bytes = 2048;  // many chunks -> much rotation
  auto r = rel::generate({.rows = 20'000, .key_domain = 4'000, .seed = 91}, "R", 1);
  auto s = rel::generate({.rows = 20'000, .key_domain = 4'000, .seed = 92}, "S", 2);
  const auto reference = join::local_hash_join(r.tuples(), s.tuples());

  CycloJoin cyclo(cluster, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);
  EXPECT_EQ(report.matches, reference.matches());
  EXPECT_EQ(report.checksum, reference.checksum());
}

INSTANTIATE_TEST_SUITE_P(Buffers, BufferCountSweep, ::testing::Values(2, 3, 4, 8));

class RingSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSizeSweep, SkewedBandJoinAcrossRingSizes) {
  ClusterConfig cluster;
  cluster.num_hosts = GetParam();
  cluster.node.buffer_bytes = 8192;
  auto r = rel::generate(
      {.rows = 5'000, .key_domain = 1'000, .zipf_z = 0.8, .seed = 93}, "R", 1);
  auto s = rel::generate(
      {.rows = 5'000, .key_domain = 1'000, .zipf_z = 0.8, .seed = 94}, "S", 2);
  const auto reference = join::local_sort_merge_join(r.tuples(), s.tuples(), 2);

  CycloJoin cyclo(cluster,
                  JoinSpec{.algorithm = Algorithm::kSortMergeJoin, .band = 2});
  const RunReport report = cyclo.run(r, s);
  EXPECT_EQ(report.matches, reference.matches());
  EXPECT_EQ(report.checksum, reference.checksum());
}

INSTANTIATE_TEST_SUITE_P(Rings, RingSizeSweep, ::testing::Values(1, 2, 3, 5, 7, 8));

class WindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowSweep, AnyLegalInjectionWindowDrains) {
  ClusterConfig cluster;
  cluster.num_hosts = 4;
  cluster.node.num_buffers = 6;
  cluster.node.injection_window = GetParam();
  cluster.node.buffer_bytes = 2048;
  auto r = rel::generate({.rows = 15'000, .key_domain = 3'000, .seed = 95}, "R", 1);
  auto s = rel::generate({.rows = 15'000, .key_domain = 3'000, .seed = 96}, "S", 2);
  const auto reference = join::local_hash_join(r.tuples(), s.tuples());

  CycloJoin cyclo(cluster, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport report = cyclo.run(r, s);
  EXPECT_EQ(report.checksum, reference.checksum());
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace cj::cyclo
