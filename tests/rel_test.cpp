// Unit tests for relation storage and the workload generators.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rel/generator.h"
#include "rel/relation.h"

namespace cj::rel {
namespace {

TEST(Tuple, IsExactlyTwelveBytes) {
  static_assert(sizeof(Tuple) == 12);
  Tuple t{0xDEADBEEF, 0x0123456789ABCDEFULL};
  EXPECT_EQ(t.key, 0xDEADBEEFu);
  // Copy out: EXPECT_EQ binds const&, and the packed payload member sits at
  // offset 4 — a uint64 reference to it would be misaligned (UB).
  EXPECT_EQ(std::uint64_t{t.payload}, 0x0123456789ABCDEFULL);
}

TEST(Relation, BasicAccounting) {
  Relation r("test");
  EXPECT_TRUE(r.empty());
  r.push_back({1, 10});
  r.push_back({2, 20});
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.bytes(), 24u);
  EXPECT_EQ(r[1].key, 2u);
  EXPECT_EQ(r.name(), "test");
}

TEST(Relation, CloneIsDeep) {
  Relation r("orig");
  r.push_back({1, 10});
  Relation copy = r.clone();
  copy.mutable_tuples()[0].key = 99;
  EXPECT_EQ(r[0].key, 1u);
  EXPECT_EQ(copy[0].key, 99u);
}

TEST(SplitEven, CoversAllRowsWithoutOverlap) {
  Relation r("r");
  for (std::uint32_t i = 0; i < 1000; ++i) r.push_back({i, i});
  for (int n : {1, 2, 3, 6, 7, 999, 1000}) {
    auto frags = split_even(r, n);
    ASSERT_EQ(static_cast<int>(frags.size()), n);
    std::size_t total = 0;
    std::uint32_t expected_key = 0;
    for (const auto& f : frags) {
      total += f.rows();
      for (const auto& t : f.tuples()) EXPECT_EQ(t.key, expected_key++);
    }
    EXPECT_EQ(total, 1000u);
  }
}

TEST(SplitEven, FragmentsAreBalanced) {
  Relation r("r");
  for (std::uint32_t i = 0; i < 1003; ++i) r.push_back({i, i});
  auto frags = split_even(r, 6);
  for (const auto& f : frags) {
    EXPECT_GE(f.rows(), 1003u / 6);
    EXPECT_LE(f.rows(), 1003u / 6 + 1);
  }
}

TEST(SplitEven, MoreFragmentsThanRows) {
  Relation r("tiny");
  r.push_back({1, 1});
  auto frags = split_even(r, 4);
  std::size_t total = 0;
  for (const auto& f : frags) total += f.rows();
  EXPECT_EQ(total, 1u);
}

TEST(Generate, RowCountAndDomain) {
  auto r = generate({.rows = 5000, .key_domain = 100, .seed = 1}, "gen");
  EXPECT_EQ(r.rows(), 5000u);
  for (const auto& t : r.tuples()) EXPECT_LT(t.key, 100u);
}

TEST(Generate, DomainDefaultsToRows) {
  auto r = generate({.rows = 2000, .seed = 2}, "gen");
  for (const auto& t : r.tuples()) EXPECT_LT(t.key, 2000u);
}

TEST(Generate, PayloadsAreUniqueRowIdsWithTag) {
  auto r = generate({.rows = 1000, .seed = 3}, "gen", /*payload_tag=*/5);
  std::set<std::uint64_t> payloads;
  // Copy the payload out: Tuple is packed, so binding set::insert's const&
  // parameter to the offset-4 uint64 member would be misaligned (UB).
  for (const auto& t : r.tuples()) payloads.insert(std::uint64_t{t.payload});
  EXPECT_EQ(payloads.size(), 1000u);
  EXPECT_EQ(*payloads.begin() >> 48, 5u);
}

TEST(Generate, DeterministicPerSeed) {
  auto a = generate({.rows = 500, .seed = 42}, "a");
  auto b = generate({.rows = 500, .seed = 42}, "b");
  auto c = generate({.rows = 500, .seed = 43}, "c");
  EXPECT_TRUE(std::equal(a.tuples().begin(), a.tuples().end(), b.tuples().begin()));
  EXPECT_FALSE(std::equal(a.tuples().begin(), a.tuples().end(), c.tuples().begin()));
}

TEST(Generate, UniformKeysAreSpread) {
  auto r = generate({.rows = 100'000, .key_domain = 10, .seed = 4}, "u");
  std::map<std::uint32_t, int> counts;
  for (const auto& t : r.tuples()) ++counts[t.key];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) EXPECT_NEAR(c, 10'000, 1'000);
}

TEST(Generate, ZipfKeysAreSkewed) {
  auto r = generate({.rows = 100'000, .key_domain = 1000, .zipf_z = 0.9, .seed = 5},
                    "z");
  std::map<std::uint32_t, int> counts;
  for (const auto& t : r.tuples()) ++counts[t.key];
  // The hottest key should hold far more than the uniform share (100).
  int hottest = 0;
  for (const auto& [k, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, 2'000);
}

TEST(VolumeHelpers, MatchPaperArithmetic) {
  // 140 M rows x 12 B = 1.68 GB — the paper's "1.6 GB" per relation.
  EXPECT_EQ(volume_bytes(140'000'000), 1'680'000'000u);
  EXPECT_EQ(rows_for_volume(volume_bytes(123)), 123u);
}

}  // namespace
}  // namespace cj::rel
