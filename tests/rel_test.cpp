// Unit tests for relation storage and the workload generators.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "rel/generator.h"
#include "rel/partitioned.h"
#include "rel/relation.h"

namespace cj::rel {
namespace {

TEST(Tuple, IsExactlyTwelveBytes) {
  static_assert(sizeof(Tuple) == 12);
  Tuple t{0xDEADBEEF, 0x0123456789ABCDEFULL};
  EXPECT_EQ(t.key, 0xDEADBEEFu);
  // Copy out: EXPECT_EQ binds const&, and the packed payload member sits at
  // offset 4 — a uint64 reference to it would be misaligned (UB).
  EXPECT_EQ(std::uint64_t{t.payload}, 0x0123456789ABCDEFULL);
}

TEST(Relation, BasicAccounting) {
  Relation r("test");
  EXPECT_TRUE(r.empty());
  r.push_back({1, 10});
  r.push_back({2, 20});
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.bytes(), 24u);
  EXPECT_EQ(r[1].key, 2u);
  EXPECT_EQ(r.name(), "test");
}

TEST(Relation, CloneIsDeep) {
  Relation r("orig");
  r.push_back({1, 10});
  Relation copy = r.clone();
  copy.mutable_tuples()[0].key = 99;
  EXPECT_EQ(r[0].key, 1u);
  EXPECT_EQ(copy[0].key, 99u);
}

TEST(SplitEven, CoversAllRowsWithoutOverlap) {
  Relation r("r");
  for (std::uint32_t i = 0; i < 1000; ++i) r.push_back({i, i});
  for (int n : {1, 2, 3, 6, 7, 999, 1000}) {
    auto frags = split_even(r, n);
    ASSERT_EQ(static_cast<int>(frags.size()), n);
    std::size_t total = 0;
    std::uint32_t expected_key = 0;
    for (const auto& f : frags) {
      total += f.rows();
      for (const auto& t : f.tuples()) EXPECT_EQ(t.key, expected_key++);
    }
    EXPECT_EQ(total, 1000u);
  }
}

TEST(SplitEven, FragmentsAreBalanced) {
  Relation r("r");
  for (std::uint32_t i = 0; i < 1003; ++i) r.push_back({i, i});
  auto frags = split_even(r, 6);
  for (const auto& f : frags) {
    EXPECT_GE(f.rows(), 1003u / 6);
    EXPECT_LE(f.rows(), 1003u / 6 + 1);
  }
}

TEST(SplitEven, MoreFragmentsThanRows) {
  Relation r("tiny");
  r.push_back({1, 1});
  auto frags = split_even(r, 4);
  std::size_t total = 0;
  for (const auto& f : frags) total += f.rows();
  EXPECT_EQ(total, 1u);
}

TEST(Generate, RowCountAndDomain) {
  auto r = generate({.rows = 5000, .key_domain = 100, .seed = 1}, "gen");
  EXPECT_EQ(r.rows(), 5000u);
  for (const auto& t : r.tuples()) EXPECT_LT(t.key, 100u);
}

TEST(Generate, DomainDefaultsToRows) {
  auto r = generate({.rows = 2000, .seed = 2}, "gen");
  for (const auto& t : r.tuples()) EXPECT_LT(t.key, 2000u);
}

TEST(Generate, PayloadsAreUniqueRowIdsWithTag) {
  auto r = generate({.rows = 1000, .seed = 3}, "gen", /*payload_tag=*/5);
  std::set<std::uint64_t> payloads;
  // Copy the payload out: Tuple is packed, so binding set::insert's const&
  // parameter to the offset-4 uint64 member would be misaligned (UB).
  for (const auto& t : r.tuples()) payloads.insert(std::uint64_t{t.payload});
  EXPECT_EQ(payloads.size(), 1000u);
  EXPECT_EQ(*payloads.begin() >> 48, 5u);
}

TEST(Generate, DeterministicPerSeed) {
  auto a = generate({.rows = 500, .seed = 42}, "a");
  auto b = generate({.rows = 500, .seed = 42}, "b");
  auto c = generate({.rows = 500, .seed = 43}, "c");
  EXPECT_TRUE(std::equal(a.tuples().begin(), a.tuples().end(), b.tuples().begin()));
  EXPECT_FALSE(std::equal(a.tuples().begin(), a.tuples().end(), c.tuples().begin()));
}

TEST(Generate, UniformKeysAreSpread) {
  auto r = generate({.rows = 100'000, .key_domain = 10, .seed = 4}, "u");
  std::map<std::uint32_t, int> counts;
  for (const auto& t : r.tuples()) ++counts[t.key];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) EXPECT_NEAR(c, 10'000, 1'000);
}

TEST(Generate, ZipfKeysAreSkewed) {
  auto r = generate({.rows = 100'000, .key_domain = 1000, .zipf_z = 0.9, .seed = 5},
                    "z");
  std::map<std::uint32_t, int> counts;
  for (const auto& t : r.tuples()) ++counts[t.key];
  // The hottest key should hold far more than the uniform share (100).
  int hottest = 0;
  for (const auto& [k, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, 2'000);
}

TEST(VolumeHelpers, MatchPaperArithmetic) {
  // 140 M rows x 12 B = 1.68 GB — the paper's "1.6 GB" per relation.
  EXPECT_EQ(volume_bytes(140'000'000), 1'680'000'000u);
  EXPECT_EQ(rows_for_volume(volume_bytes(123)), 123u);
}

TEST(ColumnStats, ExactDistinctBelowSketchSize) {
  Relation r("small");
  for (std::uint32_t k = 0; k < 500; ++k) {
    r.push_back({k * 7 + 3, k});  // 500 distinct keys, each once
    r.push_back({k * 7 + 3, k});  // and a duplicate of each
  }
  const ColumnStats stats = collect_stats(r);
  EXPECT_EQ(stats.rows, 1000u);
  EXPECT_EQ(stats.distinct_keys, 500u);
  EXPECT_EQ(stats.min_key, 3u);
  EXPECT_EQ(stats.max_key, 499u * 7 + 3);
}

TEST(ColumnStats, KmvEstimateTracksLargeDomains) {
  const std::uint64_t domain = 200'000;
  auto r = generate({.rows = 400'000, .key_domain = domain, .seed = 9}, "big");
  const ColumnStats stats = collect_stats(r);
  // ~86% of a 200k domain is hit by 400k uniform draws; the KMV sketch
  // (k = 1024) estimates that within a few percent, not within a factor.
  const double expected =
      static_cast<double>(domain) *
      (1.0 - std::exp(-400'000.0 / static_cast<double>(domain)));
  EXPECT_GT(static_cast<double>(stats.distinct_keys), expected * 0.85);
  EXPECT_LT(static_cast<double>(stats.distinct_keys), expected * 1.15);
}

TEST(ColumnStats, FragmentOverloadSketchesTheUnion) {
  // The same 600 distinct keys split over 3 fragments: a per-fragment sum
  // would report 3x; the union sketch must stay exact.
  std::vector<Relation> frags;
  for (int f = 0; f < 3; ++f) {
    Relation frag("frag");
    for (std::uint32_t k = 0; k < 600; ++k) {
      if (static_cast<int>(k) % 3 == f) frag.push_back({k, k});
    }
    frags.push_back(std::move(frag));
  }
  const ColumnStats stats = collect_stats(std::span<const Relation>(frags));
  EXPECT_EQ(stats.rows, 600u);
  EXPECT_EQ(stats.distinct_keys, 600u);
}

TEST(PartitionedRelation, SplitIsEvenAndLossless) {
  auto r = generate({.rows = 10'000, .key_domain = 5'000, .seed = 4}, "r");
  PartitionedRelation part = PartitionedRelation::split(r, 4);
  EXPECT_EQ(part.hosts(), 4);
  EXPECT_EQ(part.rows(), 10'000u);
  EXPECT_EQ(part.bytes(), 10'000u * sizeof(Tuple));
  const auto per_host = part.rows_per_host();
  ASSERT_EQ(per_host.size(), 4u);
  for (const std::uint64_t rows : per_host) EXPECT_EQ(rows, 2'500u);
  EXPECT_EQ(part.stats().rows, 10'000u);
}

TEST(PartitionedRelation, TakeFragmentsConsumesTheHandle) {
  auto r = generate({.rows = 1'000, .key_domain = 500, .seed = 4}, "r");
  PartitionedRelation part = PartitionedRelation::split(r, 2);
  std::vector<Relation> frags = std::move(part).take_fragments();
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].rows() + frags[1].rows(), 1'000u);
}

TEST(PartitionedRelation, RefreshStatsSeesInPlaceMutation) {
  auto r = generate({.rows = 1'000, .key_domain = 500, .seed = 4}, "r");
  PartitionedRelation part = PartitionedRelation::split(r, 2);
  part.mutable_fragments()[0] = Relation("empty");
  EXPECT_EQ(part.stats().rows, 1'000u);  // stale until told otherwise
  part.refresh_stats();
  EXPECT_EQ(part.stats().rows, part.fragment(1).rows());
}

}  // namespace
}  // namespace cj::rel
