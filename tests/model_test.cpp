// Tests for the network CPU-overhead model (paper Fig. 3) and its
// consistency with the tcpsim substrate.
#include <gtest/gtest.h>

#include "model/cost_model.h"

namespace cj::model {
namespace {

TEST(CostModel, KernelTcpDecompositionMatchesPaperShape) {
  const auto tcp = cpu_overhead(StackKind::kKernelTcp);
  // Paper Fig. 3: data copying is about half the total cost.
  EXPECT_NEAR(tcp.data_copying / tcp.total(), 0.5, 0.1);
  // Protocol processing alone is a minor factor.
  EXPECT_LT(tcp.network_stack / tcp.total(), 0.3);
  EXPECT_GT(tcp.total(), 0.0);
}

TEST(CostModel, ToeBarelyHelps) {
  const auto tcp = cpu_overhead(StackKind::kKernelTcp);
  const auto toe = cpu_overhead(StackKind::kToeOffload);
  EXPECT_LT(toe.total(), tcp.total());
  // "usually yields only little advantage": still >= ~70% of the full cost.
  EXPECT_GT(toe.total() / tcp.total(), 0.7);
  EXPECT_EQ(toe.network_stack, 0.0);
  EXPECT_EQ(toe.data_copying, tcp.data_copying);
}

TEST(CostModel, RdmaRemovesAlmostEverything) {
  const auto tcp = cpu_overhead(StackKind::kKernelTcp);
  const auto rdma = cpu_overhead(StackKind::kRdma);
  EXPECT_LT(rdma.total() / tcp.total(), 0.01);
  EXPECT_EQ(rdma.data_copying, 0.0);
  EXPECT_EQ(rdma.context_switches, 0.0);
}

TEST(CostModel, RuleOfThumbOneGhzPerGbps) {
  // Sec. III-A: ~1 GHz of CPU per 1 Gb/s of kernel-TCP throughput.
  const double cycles_per_byte = cpu_overhead(StackKind::kKernelTcp).total() * 2.33;
  const double ghz_per_gbps = cycles_per_byte * 0.125;
  EXPECT_NEAR(ghz_per_gbps, 1.0, 0.25);
}

TEST(CostModel, CpuShareScalesWithThroughputAndCores) {
  const double at_10g_4c = cpu_share_at(StackKind::kKernelTcp, 10.0, 4, 2.33);
  const double at_5g_4c = cpu_share_at(StackKind::kKernelTcp, 5.0, 4, 2.33);
  const double at_10g_8c = cpu_share_at(StackKind::kKernelTcp, 10.0, 8, 2.33);
  EXPECT_NEAR(at_5g_4c, at_10g_4c / 2.0, 1e-9);
  EXPECT_NEAR(at_10g_8c, at_10g_4c / 2.0, 1e-9);
  // The paper's point: 10 Gb/s of kernel TCP eats ~all of a quad-core host.
  EXPECT_GT(at_10g_4c, 0.8);
  // RDMA at the same rate is negligible.
  EXPECT_LT(cpu_share_at(StackKind::kRdma, 10.0, 4, 2.33), 0.01);
}

TEST(CostModel, FasterCoresLowerTheShare) {
  const double old_core = cpu_share_at(StackKind::kKernelTcp, 10.0, 4, 2.33);
  const double new_core = cpu_share_at(StackKind::kKernelTcp, 10.0, 4, 4.66);
  EXPECT_NEAR(new_core, old_core / 2.0, 1e-9);
}

TEST(CostModel, SegmentSizeMovesPerSegmentCosts) {
  CostModelParams small;
  small.tcp.segment_size = 16 * 1024;
  CostModelParams large;
  large.tcp.segment_size = 256 * 1024;
  const auto s = cpu_overhead(StackKind::kKernelTcp, small);
  const auto l = cpu_overhead(StackKind::kKernelTcp, large);
  EXPECT_GT(s.network_stack, l.network_stack);
  EXPECT_EQ(s.data_copying, l.data_copying);  // copies are per byte
}

TEST(CostModel, StackKindNames) {
  EXPECT_EQ(to_string(StackKind::kKernelTcp), "everything-on-cpu");
  EXPECT_EQ(to_string(StackKind::kToeOffload), "network-stack-on-nic");
  EXPECT_EQ(to_string(StackKind::kRdma), "rdma");
}

}  // namespace
}  // namespace cj::model
