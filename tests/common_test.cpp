// Unit tests for the common utilities: status/result, rng, zipf, units,
// stats, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"
#include "common/zipf.h"

namespace cj {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = invalid_argument("bad ring size");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.to_string(), "invalid_argument: bad ring size");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = not_found("no such host");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

// ------------------------------------------------------------------ Zipf

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[zipf(rng)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) {
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 10u);
    EXPECT_NEAR(c, 5000, 500);
  }
}

TEST(Zipf, DomainOfOneAlwaysReturnsOne) {
  ZipfGenerator zipf(1, 0.9);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 1u);
}

TEST(Zipf, SamplesStayInDomain) {
  for (double z : {0.3, 0.6, 0.9, 1.2}) {
    ZipfGenerator zipf(1000, z);
    Rng rng(3);
    for (int i = 0; i < 10'000; ++i) {
      const auto v = zipf(rng);
      EXPECT_GE(v, 1u);
      EXPECT_LE(v, 1000u);
    }
  }
}

TEST(Zipf, MatchesTheoreticalFrequencies) {
  // P(rank k) proportional to k^-z; check the head ranks empirically.
  const double z = 0.9;
  const std::uint64_t n = 10'000;
  ZipfGenerator zipf(n, z);
  Rng rng(4);
  constexpr int kDraws = 400'000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf(rng)];

  double h = 0;  // generalized harmonic number
  for (std::uint64_t k = 1; k <= n; ++k) h += std::pow(static_cast<double>(k), -z);
  for (std::uint64_t k : {1ULL, 2ULL, 5ULL, 10ULL}) {
    const double expected = kDraws * std::pow(static_cast<double>(k), -z) / h;
    EXPECT_NEAR(counts[k], expected, expected * 0.1 + 30)
        << "rank " << k;
  }
}

TEST(Zipf, HigherExponentIsMoreSkewed) {
  Rng rng1(5), rng2(5);
  ZipfGenerator mild(1000, 0.3), heavy(1000, 1.1);
  int mild_top = 0, heavy_top = 0;
  for (int i = 0; i < 20'000; ++i) {
    mild_top += (mild(rng1) == 1);
    heavy_top += (heavy(rng2) == 1);
  }
  EXPECT_GT(heavy_top, mild_top * 3);
}

// ----------------------------------------------------------------- Units

TEST(Units, SecondsRoundTrip) {
  EXPECT_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000);
  EXPECT_EQ(to_seconds(from_seconds(0.125)), 0.125);
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

TEST(Units, HumanBytes) {
  EXPECT_EQ(human_bytes(999), "999 B");
  EXPECT_EQ(human_bytes(3'200'000'000ULL), "3.20 GB");
}

TEST(Units, HumanDuration) {
  EXPECT_EQ(human_duration(500), "500 ns");
  EXPECT_EQ(human_duration(2'700'000'000LL), "2.70 s");
}

// ----------------------------------------------------------------- Stats

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
}

TEST(PercentileSketch, NearestRank) {
  PercentileSketch p;
  for (int i = 100; i >= 1; --i) p.add(i);
  EXPECT_EQ(p.percentile(0), 1.0);
  EXPECT_EQ(p.percentile(100), 100.0);
  EXPECT_NEAR(p.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(p.percentile(99), 99.0, 1.0);
}

// ----------------------------------------------------------------- Flags

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(Flags, ParsesBothForms) {
  std::vector<std::string> args = {"prog", "--scale=32", "--nodes", "6", "--fast"};
  auto argv = argv_of(args);
  auto flags = Flags::parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.is_ok());
  EXPECT_EQ(flags->get_int("scale", 0), 32);
  EXPECT_EQ(flags->get_int("nodes", 0), 6);
  EXPECT_TRUE(flags->get_bool("fast", false));
  EXPECT_EQ(flags->get_int("missing", 7), 7);
}

TEST(Flags, IntAndDoubleLists) {
  std::vector<std::string> args = {"prog", "--nodes=1,2,6", "--zipf=0,0.5,0.9"};
  auto argv = argv_of(args);
  auto flags = Flags::parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.is_ok());
  EXPECT_EQ(flags->get_int_list("nodes", {}),
            (std::vector<std::int64_t>{1, 2, 6}));
  EXPECT_EQ(flags->get_double_list("zipf", {}),
            (std::vector<double>{0.0, 0.5, 0.9}));
}

TEST(Flags, RejectsMalformedArgument) {
  std::vector<std::string> args = {"prog", "stray"};
  auto argv = argv_of(args);
  auto flags = Flags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(flags.is_ok());
}

TEST(Flags, TracksUnusedFlags) {
  std::vector<std::string> args = {"prog", "--used=1", "--typo=2"};
  auto argv = argv_of(args);
  auto flags = Flags::parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.is_ok());
  (void)flags->get_int("used", 0);
  const auto unused = flags->unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace cj
