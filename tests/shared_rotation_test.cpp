// Tests for Data Cyclotron mode: one rotation of the hot relation serving
// several concurrent queries.
#include <gtest/gtest.h>

#include "cyclo/cyclo_join.h"
#include "join/local_join.h"
#include "rel/generator.h"

namespace cj::cyclo {
namespace {

ClusterConfig small_cluster(int hosts) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.node.buffer_bytes = 32 * 1024;
  return cfg;
}

TEST(SharedRotation, EachQueryMatchesItsIndividualRun) {
  auto r = rel::generate({.rows = 50'000, .key_domain = 10'000, .seed = 1}, "R", 1);
  auto s1 = rel::generate({.rows = 40'000, .key_domain = 10'000, .seed = 2}, "S1", 2);
  auto s2 = rel::generate({.rows = 20'000, .key_domain = 10'000, .seed = 3}, "S2", 3);
  auto s3 = rel::generate({.rows = 5'000, .key_domain = 10'000, .seed = 4}, "S3", 4);

  CycloJoin cyclo(small_cluster(4), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const SharedRunReport shared =
      cyclo.run_shared(r, {SharedQuery{.stationary = &s1},
                           SharedQuery{.stationary = &s2},
                           SharedQuery{.stationary = &s3}});

  ASSERT_EQ(shared.queries.size(), 3u);
  const rel::Relation* tables[] = {&s1, &s2, &s3};
  for (int q = 0; q < 3; ++q) {
    const auto reference = join::local_hash_join(r.tuples(), tables[q]->tuples());
    EXPECT_EQ(shared.queries[static_cast<std::size_t>(q)].matches,
              reference.matches())
        << "query " << q;
    EXPECT_EQ(shared.queries[static_cast<std::size_t>(q)].checksum,
              reference.checksum());
  }
}

TEST(SharedRotation, NetworkTrafficIsPaidOnceNotPerQuery) {
  auto r = rel::generate({.rows = 60'000, .key_domain = 60'000, .seed = 5}, "R", 1);
  auto s1 = rel::generate({.rows = 30'000, .key_domain = 60'000, .seed = 6}, "S1", 2);
  auto s2 = rel::generate({.rows = 30'000, .key_domain = 60'000, .seed = 7}, "S2", 3);

  CycloJoin cyclo(small_cluster(4), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const SharedRunReport shared = cyclo.run_shared(
      r, {SharedQuery{.stationary = &s1}, SharedQuery{.stationary = &s2}});
  const RunReport solo = cyclo.run(r, s1);

  // Same rotating relation -> ~the same bytes over the wire, not double.
  EXPECT_NEAR(static_cast<double>(shared.bytes_on_wire),
              static_cast<double>(solo.bytes_on_wire),
              static_cast<double>(solo.bytes_on_wire) * 0.02);
}

TEST(SharedRotation, PerQueryBandsOnOneRotation) {
  auto r = rel::generate({.rows = 4'000, .key_domain = 1'500, .seed = 8}, "R", 1);
  auto s = rel::generate({.rows = 4'000, .key_domain = 1'500, .seed = 9}, "S", 2);

  CycloJoin cyclo(small_cluster(3),
                  JoinSpec{.algorithm = Algorithm::kSortMergeJoin});
  const SharedRunReport shared = cyclo.run_shared(
      r, {SharedQuery{.stationary = &s, .band = 0},
          SharedQuery{.stationary = &s, .band = 2},
          SharedQuery{.stationary = &s, .band = 8}});

  const auto ref0 = join::local_sort_merge_join(r.tuples(), s.tuples(), 0);
  const auto ref2 = join::local_sort_merge_join(r.tuples(), s.tuples(), 2);
  const auto ref8 = join::local_sort_merge_join(r.tuples(), s.tuples(), 8);
  EXPECT_EQ(shared.queries[0].matches, ref0.matches());
  EXPECT_EQ(shared.queries[1].matches, ref2.matches());
  EXPECT_EQ(shared.queries[2].matches, ref8.matches());
  EXPECT_EQ(shared.queries[0].checksum, ref0.checksum());
  EXPECT_EQ(shared.queries[1].checksum, ref2.checksum());
  EXPECT_EQ(shared.queries[2].checksum, ref8.checksum());
  // More band, more matches.
  EXPECT_LT(shared.queries[0].matches, shared.queries[1].matches);
  EXPECT_LT(shared.queries[1].matches, shared.queries[2].matches);
}

TEST(SharedRotation, SingleQueryEqualsRun) {
  auto r = rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 10}, "R", 1);
  auto s = rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 11}, "S", 2);
  CycloJoin cyclo(small_cluster(3), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const SharedRunReport shared = cyclo.run_shared(r, {SharedQuery{.stationary = &s}});
  const RunReport solo = cyclo.run(r, s);
  EXPECT_EQ(shared.matches, solo.matches);
  EXPECT_EQ(shared.checksum, solo.checksum);
}

TEST(SharedRotation, WorksOnSingleHost) {
  auto r = rel::generate({.rows = 10'000, .key_domain = 2'000, .seed = 12}, "R", 1);
  auto s1 = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 13}, "S1", 2);
  auto s2 = rel::generate({.rows = 6'000, .key_domain = 2'000, .seed = 14}, "S2", 3);
  CycloJoin cyclo(small_cluster(1), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const SharedRunReport shared = cyclo.run_shared(
      r, {SharedQuery{.stationary = &s1}, SharedQuery{.stationary = &s2}});
  EXPECT_EQ(shared.queries[0].matches,
            join::local_hash_join(r.tuples(), s1.tuples()).matches());
  EXPECT_EQ(shared.queries[1].matches,
            join::local_hash_join(r.tuples(), s2.tuples()).matches());
}

TEST(SharedRotation, TaggedQueriesBillBusyTimePerQuery) {
  auto r = rel::generate({.rows = 20'000, .key_domain = 5'000, .seed = 17}, "R", 1);
  auto s1 = rel::generate({.rows = 15'000, .key_domain = 5'000, .seed = 18}, "S1", 2);
  auto s2 = rel::generate({.rows = 15'000, .key_domain = 5'000, .seed = 19}, "S2", 3);

  CycloJoin cyclo(small_cluster(3), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const SharedRunReport shared = cyclo.run_shared(
      r, {SharedQuery{.stationary = &s1, .tag = "q1"},
          SharedQuery{.stationary = &s2, .tag = "q2"}});

  // Each tagged query accumulates its own core-busy counter, and the shared
  // default bucket stays empty: every join work item belongs to some query.
  const auto& counters = shared.metrics.counters;
  ASSERT_TRUE(counters.contains("busy.q1"));
  ASSERT_TRUE(counters.contains("busy.q2"));
  EXPECT_GT(counters.at("busy.q1"), 0);
  EXPECT_GT(counters.at("busy.q2"), 0);
  EXPECT_FALSE(counters.contains("busy.join"));
}

TEST(SharedRotation, UntaggedQueriesKeepTheSharedJoinBucket) {
  auto r = rel::generate({.rows = 10'000, .key_domain = 2'500, .seed = 20}, "R", 1);
  auto s = rel::generate({.rows = 8'000, .key_domain = 2'500, .seed = 21}, "S", 2);

  CycloJoin cyclo(small_cluster(3), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const SharedRunReport shared = cyclo.run_shared(
      r, {SharedQuery{.stationary = &s}, SharedQuery{.stationary = &s}});

  // No tags -> the historical "busy.join" accounting is untouched and no
  // per-query counters appear.
  const auto& counters = shared.metrics.counters;
  ASSERT_TRUE(counters.contains("busy.join"));
  EXPECT_GT(counters.at("busy.join"), 0);
  for (const auto& [name, value] : counters) {
    EXPECT_FALSE(name.starts_with("busy.q")) << name << "=" << value;
  }
}

TEST(SharedRotationDeath, MaterializationRequiresSingleQuery) {
  auto r = rel::generate({.rows = 100, .key_domain = 50, .seed = 15}, "R", 1);
  auto s = rel::generate({.rows = 100, .key_domain = 50, .seed = 16}, "S", 2);
  JoinSpec spec{.algorithm = Algorithm::kHashJoin};
  spec.materialize = true;
  CycloJoin cyclo(small_cluster(2), spec);
  EXPECT_DEATH(cyclo.run_shared(r, {SharedQuery{.stationary = &s},
                                    SharedQuery{.stationary = &s}}),
               "single-query");
}

}  // namespace
}  // namespace cj::cyclo
