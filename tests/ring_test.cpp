// Tests for the Data Roundabout transport layer (RoundaboutNode) driven
// directly with opaque payloads: full-revolution delivery, credit flow,
// retire acks, injection windows, sync accounting — over both wire types.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "cyclo/cluster.h"
#include "cyclo/config.h"
#include "rel/generator.h"
#include "ring/node.h"
#include "ring/redistribute.h"
#include "sim/engine.h"

namespace cj::ring {
namespace {

using cyclo::Cluster;
using cyclo::ClusterConfig;
using cyclo::Transport;
using sim::Task;

ClusterConfig ring_config(int hosts, Transport transport, int buffers,
                          std::size_t buffer_bytes = 4096) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.cores_per_host = 2;
  cfg.transport = transport;
  cfg.node.num_buffers = buffers;
  cfg.node.buffer_bytes = buffer_bytes;
  return cfg;
}

// A tiny test protocol: each payload is [origin_host, chunk_seq, filler...].
// Every host forwards each chunk until it has visited all hosts, recording
// what it saw; pure transport semantics, no joins involved.
struct RingHarness {
  sim::Engine engine;
  Cluster cluster;
  int n;
  std::uint64_t chunks_per_host;
  std::size_t payload_size;
  // received[host] = list of (origin, seq).
  std::vector<std::vector<std::pair<int, int>>> received;
  std::vector<std::vector<std::byte>> local_slabs;

  RingHarness(ClusterConfig cfg, std::uint64_t chunks_per_host,
              std::size_t payload_size)
      : cluster(engine, cfg),
        n(cfg.num_hosts),
        chunks_per_host(chunks_per_host),
        payload_size(payload_size),
        received(static_cast<std::size_t>(cfg.num_hosts)) {
    CJ_CHECK(payload_size >= 2 && payload_size <= cfg.node.buffer_bytes);
    for (int i = 0; i < n; ++i) {
      std::vector<std::byte> slab(chunks_per_host * payload_size);
      for (std::uint64_t c = 0; c < chunks_per_host; ++c) {
        slab[c * payload_size] = static_cast<std::byte>(i);
        slab[c * payload_size + 1] = static_cast<std::byte>(c);
      }
      local_slabs.push_back(std::move(slab));
    }
  }

  std::span<const std::byte> local_chunk(int host, std::uint64_t c) {
    return std::span<const std::byte>(local_slabs[static_cast<std::size_t>(host)])
        .subspan(c * payload_size, payload_size);
  }

  Task<void> host_process(int i) {
    RoundaboutNode& node = cluster.node(i);
    const std::uint64_t global = chunks_per_host * static_cast<std::uint64_t>(n);
    {
      std::vector<std::span<std::byte>> slabs;
      slabs.push_back(local_slabs[static_cast<std::size_t>(i)]);
      co_await node.start(NodeCounts{global, global}, std::move(slabs));
    }
    // Injector inline (tests use few chunks; window blocking is exercised
    // by dedicated tests below).
    engine.spawn(injector(i), "inj");

    const std::uint64_t arrivals =
        global - chunks_per_host;  // data chunks from the ring
    for (std::uint64_t k = 0; k < arrivals; ++k) {
      InboundChunk chunk = co_await node.next_chunk();
      const int origin = static_cast<int>(chunk.payload[0]);
      const int seq = static_cast<int>(chunk.payload[1]);
      received[static_cast<std::size_t>(i)].push_back({origin, seq});
      if (cluster.fabric().successor(i) == origin) {
        node.retire(chunk);
      } else {
        node.forward(chunk);
      }
    }
    co_await node.drain();
  }

  Task<void> injector(int i) {
    RoundaboutNode& node = cluster.node(i);
    for (std::uint64_t c = 0; c < chunks_per_host; ++c) {
      co_await node.send_local(local_chunk(i, c));
    }
  }

  void run() {
    for (int i = 0; i < n; ++i) {
      engine.spawn(host_process(i), "host" + std::to_string(i));
    }
    engine.run();
    engine.check_all_complete();
  }
};

class RingTransports : public ::testing::TestWithParam<Transport> {};

TEST_P(RingTransports, EveryChunkVisitsEveryOtherHostExactlyOnce) {
  RingHarness h(ring_config(4, GetParam(), 4), 5, 256);
  h.run();
  for (int host = 0; host < 4; ++host) {
    std::map<std::pair<int, int>, int> seen;
    for (const auto& rec : h.received[static_cast<std::size_t>(host)]) {
      ++seen[rec];
    }
    // Host sees 5 chunks from each of the 3 other hosts, each exactly once.
    EXPECT_EQ(seen.size(), 15u) << "host " << host;
    for (const auto& [key, count] : seen) {
      EXPECT_EQ(count, 1);
      EXPECT_NE(key.first, host);
    }
  }
}

TEST_P(RingTransports, ChunksFromOneOriginArriveInOrder) {
  RingHarness h(ring_config(3, GetParam(), 4), 8, 128);
  h.run();
  for (int host = 0; host < 3; ++host) {
    std::map<int, int> last_seq;
    for (const auto& [origin, seq] : h.received[static_cast<std::size_t>(host)]) {
      auto it = last_seq.find(origin);
      if (it != last_seq.end()) {
        EXPECT_GT(seq, it->second);
      }
      last_seq[origin] = seq;
    }
  }
}

TEST_P(RingTransports, RingOfTwo) {
  RingHarness h(ring_config(2, GetParam(), 2), 3, 64);
  h.run();
  for (int host = 0; host < 2; ++host) {
    EXPECT_EQ(h.received[static_cast<std::size_t>(host)].size(), 3u);
  }
}

TEST_P(RingTransports, MinimalBuffersStillComplete) {
  // Two buffers is the documented minimum; the injection window drops to 1.
  RingHarness h(ring_config(5, GetParam(), 2), 6, 128);
  h.run();
  for (int host = 0; host < 5; ++host) {
    EXPECT_EQ(h.received[static_cast<std::size_t>(host)].size(), 24u);
  }
}

TEST_P(RingTransports, PayloadBytesSurviveTheRing) {
  RingHarness h(ring_config(3, GetParam(), 4, 1024), 2, 512);
  // Stamp recognizable bytes beyond the header.
  for (int i = 0; i < 3; ++i) {
    for (std::uint64_t c = 0; c < 2; ++c) {
      auto* p = h.local_slabs[static_cast<std::size_t>(i)].data() + c * 512;
      for (std::size_t b = 2; b < 512; ++b) {
        p[b] = static_cast<std::byte>((b * (static_cast<std::size_t>(i) + 1)) & 0xFF);
      }
    }
  }
  // Verify on arrival by patching the harness' receive loop: easiest is to
  // check after the run via bytes_sent (content equality is covered by the
  // wire tests); here we assert the transport moved the right volume.
  h.run();
  for (int i = 0; i < 3; ++i) {
    // Each host sends its 2 locals + forwards 2 (the middle hop) + 2 acks.
    EXPECT_EQ(h.cluster.node(i).bytes_sent(), (2u + 2u) * 512u);
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, RingTransports,
                         ::testing::Values(Transport::kRdma, Transport::kTcp));

TEST(RingNode, SingleHostNeedsNoTransport) {
  sim::Engine engine;
  ClusterConfig cfg = ring_config(1, Transport::kRdma, 2);
  Cluster cluster(engine, cfg);
  bool done = false;
  engine.spawn(
      [](Cluster& cluster, bool* done) -> Task<void> {
        co_await cluster.node(0).start({}, {});
        co_await cluster.node(0).drain();
        *done = true;
      }(cluster, &done),
      "single");
  engine.run();
  engine.check_all_complete();
  EXPECT_TRUE(done);
}

TEST(RingNode, SyncTimeAccountsJoinEntityWaiting) {
  // One chunk crawls around a 3-host ring; every consumer must wait for it,
  // so sync time is positive and roughly the transfer latency.
  RingHarness h(ring_config(3, Transport::kRdma, 4), 1, 2048);
  h.run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(h.cluster.node(i).sync_time(), 0);
  }
}

TEST(RingNode, StatsCountReceivedChunks) {
  RingHarness h(ring_config(4, Transport::kRdma, 4), 3, 128);
  h.run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(h.cluster.node(i).chunks_received(), 9u);  // 3 chunks x 3 others
  }
}

TEST(RingNode, WireTrafficMatchesProtocol) {
  const std::size_t payload = 256;
  RingHarness h(ring_config(3, Transport::kRdma, 4, payload), 4, payload);
  h.run();
  // Data-direction traffic: every chunk crosses n-1 = 2 links.
  const std::uint64_t chunk_bytes = 3ULL * 4 * 2 * payload;
  EXPECT_EQ(h.cluster.fabric().total_data_bytes(), chunk_bytes);
}

// Unusable configurations are rejected by start() with a Status (the node
// refuses to spawn anything) instead of deadlocking deep in the protocol.
Status probe_start(ClusterConfig cfg) {
  sim::Engine engine;
  Cluster cluster(engine, cfg);
  Status result;
  engine.spawn(
      [](Cluster& c, Status& out) -> Task<void> {
        out = co_await c.node(0).start(NodeCounts{}, {});
      }(cluster, result),
      "probe");
  engine.run();
  return result;
}

TEST(RingNodeValidation, RequiresTwoBuffersWhenConnected) {
  const Status st = probe_start(ring_config(2, Transport::kRdma, 1));
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(st.message().find("two ring buffers"), std::string::npos);
}

TEST(RingNodeValidation, RejectsInjectionWindowAtOrAboveBufferCount) {
  ClusterConfig cfg = ring_config(2, Transport::kRdma, 4);
  cfg.node.injection_window = 4;  // == num_buffers: no free buffer ahead
  const Status st = probe_start(cfg);
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(st.message().find("injection_window"), std::string::npos);
}

TEST(RingNodeValidation, RejectsTinyBuffers) {
  const Status st =
      probe_start(ring_config(2, Transport::kRdma, 4, /*buffer_bytes=*/32));
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(st.message().find("buffer_bytes"), std::string::npos);
}

// ----- keyed redistribution (the between-rounds phase of src/plan) --------

std::vector<rel::Relation> skewed_fragments(int hosts, std::uint64_t rows,
                                            std::uint64_t seed) {
  // Deliberately unbalanced: host 0 holds everything, the rest are empty —
  // the worst case a lopsided join round can hand the next round.
  std::vector<rel::Relation> frags;
  frags.push_back(rel::generate(
      {.rows = rows, .key_domain = rows / 2, .seed = seed}, "frag0"));
  for (int i = 1; i < hosts; ++i) frags.emplace_back("frag");
  return frags;
}

std::multiset<std::pair<std::uint32_t, std::uint64_t>> multiset_of(
    const std::vector<rel::Relation>& frags) {
  std::multiset<std::pair<std::uint32_t, std::uint64_t>> out;
  for (const rel::Relation& frag : frags) {
    for (const rel::Tuple& t : frag.tuples()) out.emplace(t.key, t.payload);
  }
  return out;
}

TEST(Redistribute, EveryKeyLandsOnItsHomeHost) {
  auto frags = skewed_fragments(5, 20'000, 17);
  const auto before = multiset_of(frags);
  const RedistributeStats stats = redistribute_by_key(&frags);
  for (int i = 0; i < 5; ++i) {
    for (const rel::Tuple& t : frags[static_cast<std::size_t>(i)].tuples()) {
      EXPECT_EQ(home_host(t.key, 5), i);
    }
  }
  // Nothing lost, nothing invented, multiplicity preserved.
  EXPECT_EQ(multiset_of(frags), before);
  EXPECT_EQ(stats.rows_moved + stats.rows_kept, 20'000u);
}

TEST(Redistribute, RebalancesTheWorstCaseSkew) {
  auto frags = skewed_fragments(4, 40'000, 23);
  redistribute_by_key(&frags);
  for (const rel::Relation& frag : frags) {
    // Hash partitioning spreads a 10k/host average to within a few percent.
    EXPECT_GT(frag.rows(), 9'000u);
    EXPECT_LT(frag.rows(), 11'000u);
  }
}

TEST(Redistribute, AccountsLinkTrafficExactly) {
  auto frags = skewed_fragments(4, 8'000, 29);
  const RedistributeStats stats = redistribute_by_key(&frags);
  EXPECT_GT(stats.records, 0u);
  // Every moved row's payload crosses at least one link; records add a
  // 16-byte header per crossing. The busiest link carries a subset.
  EXPECT_GE(stats.bytes_on_wire,
            stats.rows_moved * sizeof(rel::Tuple) + stats.records * 16);
  EXPECT_LE(stats.max_link_bytes, stats.bytes_on_wire);
  EXPECT_GT(stats.max_link_bytes, 0u);
}

TEST(Redistribute, IsDeterministic) {
  auto a = skewed_fragments(3, 5'000, 31);
  auto b = skewed_fragments(3, 5'000, 31);
  redistribute_by_key(&a);
  redistribute_by_key(&b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows(), b[i].rows());
    for (std::size_t r = 0; r < a[i].rows(); ++r) {
      EXPECT_EQ(a[i][r].key, b[i][r].key);
      EXPECT_EQ(std::uint64_t{a[i][r].payload},
                std::uint64_t{b[i][r].payload});
    }
  }
}

TEST(Redistribute, SingleHostIsANoOp) {
  std::vector<rel::Relation> frags;
  frags.push_back(rel::generate({.rows = 100, .key_domain = 50, .seed = 3},
                                "only"));
  const RedistributeStats stats = redistribute_by_key(&frags);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.bytes_on_wire, 0u);
  EXPECT_EQ(stats.rows_kept, 100u);
  EXPECT_EQ(frags[0].rows(), 100u);
}

}  // namespace
}  // namespace cj::ring
