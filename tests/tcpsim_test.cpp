// Unit tests for the kernel-TCP substrate: data integrity, segmentation,
// CPU billing, backpressure, EOF semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "net/link.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "tcpsim/tcp.h"

namespace cj::tcpsim {
namespace {

using sim::Engine;
using sim::Task;

struct Rig {
  Engine engine;
  sim::CorePool tx_cores{engine, 4};
  sim::CorePool rx_cores{engine, 4};
  net::DuplexLink link{engine, net::LinkSpec{}, "tcp"};
  TcpConnection conn;

  explicit Rig(TcpModelConfig config = {})
      : conn(engine, tx_cores, rx_cores, link.forward, config) {}
};

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i * 13 + 7);
  return v;
}

TEST(TcpConnection, DeliversBytesIntact) {
  Rig rig;
  auto src = pattern(300'000);  // spans several segments
  std::vector<std::byte> dst(src.size());
  rig.engine.spawn(
      [](Rig& rig, std::span<const std::byte> src) -> Task<void> {
        co_await rig.conn.send(src);
        rig.conn.close();
      }(rig, src),
      "tx");
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> dst) -> Task<void> {
        co_await rig.conn.recv(dst);
      }(rig, dst),
      "rx");
  rig.engine.run();
  rig.engine.check_all_complete();
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(TcpConnection, ManySmallMessagesPreserveBoundariesViaStream) {
  Rig rig;
  // The stream has no message boundaries: N sends of 100 bytes must be
  // readable as one 100*N-byte recv and vice versa.
  constexpr int kMessages = 50;
  auto src = pattern(100 * kMessages);
  std::vector<std::byte> dst(src.size());
  rig.engine.spawn(
      [](Rig& rig, std::span<const std::byte> src) -> Task<void> {
        for (int i = 0; i < kMessages; ++i) {
          co_await rig.conn.send(src.subspan(static_cast<std::size_t>(i) * 100, 100));
        }
        rig.conn.close();
      }(rig, src),
      "tx");
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> dst) -> Task<void> {
        co_await rig.conn.recv(dst);
      }(rig, dst),
      "rx");
  rig.engine.run();
  rig.engine.check_all_complete();
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(TcpConnection, BillsCpuOnBothSides) {
  Rig rig;
  auto src = pattern(1 << 20);
  std::vector<std::byte> dst(src.size());
  rig.engine.spawn(
      [](Rig& rig, std::span<const std::byte> src) -> Task<void> {
        co_await rig.conn.send(src);
        rig.conn.close();
      }(rig, src),
      "tx");
  rig.engine.spawn(
      [](Rig& rig, std::span<std::byte> dst) -> Task<void> {
        co_await rig.conn.recv(dst);
      }(rig, dst),
      "rx");
  rig.engine.run();

  const TcpModelConfig cfg;
  const double bytes = static_cast<double>(src.size());
  const double segments = bytes / static_cast<double>(cfg.segment_size);
  const auto expected_tx = static_cast<SimDuration>(
      bytes * cfg.tx_copy_ns_per_byte + segments * cfg.tx_stack_cost_per_segment);
  const auto expected_rx = static_cast<SimDuration>(
      bytes * cfg.rx_copy_ns_per_byte +
      segments * (cfg.rx_stack_cost_per_segment + cfg.rx_wakeup_cost));
  EXPECT_NEAR(static_cast<double>(rig.tx_cores.busy_for("tcp-tx")),
              static_cast<double>(expected_tx), static_cast<double>(expected_tx) * 0.02);
  EXPECT_NEAR(static_cast<double>(rig.rx_cores.busy_for("tcp-rx")),
              static_cast<double>(expected_rx), static_cast<double>(expected_rx) * 0.02);
}

TEST(TcpConnection, WindowLimitsSenderAheadOfReceiver) {
  Rig rig;
  auto src = pattern(4 << 20);  // far exceeds tx + rx queue capacity
  SimTime send_done = 0;
  bool receiver_started = false;
  rig.engine.spawn(
      [](Rig& rig, std::span<const std::byte> src, SimTime* done) -> Task<void> {
        co_await rig.conn.send(src);
        *done = rig.engine.now();
        rig.conn.close();
      }(rig, src, &send_done),
      "tx");
  rig.engine.spawn(
      [](Rig& rig, std::size_t n, bool* started) -> Task<void> {
        co_await rig.engine.sleep(kSecond);  // receiver shows up very late
        *started = true;
        std::vector<std::byte> dst(n);
        co_await rig.conn.recv(dst);
      }(rig, src.size(), &receiver_started),
      "rx");
  rig.engine.run();
  rig.engine.check_all_complete();
  // 4 MB cannot fit the tx + rx queues (2 x 8 segments = 1 MB); the sender
  // must have blocked until the receiver drained.
  EXPECT_TRUE(receiver_started);
  EXPECT_GE(send_done, kSecond);
}

TEST(TcpConnection, RecvOrEofSignalsCleanClose) {
  Rig rig;
  auto src = pattern(256);
  std::vector<int> events;
  rig.engine.spawn(
      [](Rig& rig, std::span<const std::byte> src) -> Task<void> {
        co_await rig.conn.send(src);
        rig.conn.close();
      }(rig, src),
      "tx");
  rig.engine.spawn(
      [](Rig& rig, std::vector<int>* events) -> Task<void> {
        std::vector<std::byte> dst(256);
        const bool first = co_await rig.conn.recv_or_eof(dst);
        events->push_back(first ? 1 : 0);
        const bool second = co_await rig.conn.recv_or_eof(dst);
        events->push_back(second ? 1 : 0);
      }(rig, &events),
      "rx");
  rig.engine.run();
  rig.engine.check_all_complete();
  EXPECT_EQ(events, (std::vector<int>{1, 0}));
}

TEST(TcpConnection, ThroughputIsCpuNotWireLimited) {
  // With era constants the serial receive path (copy + stack + wakeup per
  // segment) cannot sustain the 10 GbE wire: a single kernel-TCP stream
  // tops out well below 1.25 GB/s — the paper's core motivation for RDMA.
  Rig rig;
  const std::size_t bytes = 8 << 20;
  auto src = pattern(bytes);
  rig.engine.spawn(
      [](Rig& rig, std::span<const std::byte> src) -> Task<void> {
        co_await rig.conn.send(src);
        rig.conn.close();
      }(rig, src),
      "tx");
  rig.engine.spawn(
      [](Rig& rig, std::size_t n) -> Task<void> {
        std::vector<std::byte> dst(n);
        co_await rig.conn.recv(dst);
      }(rig, bytes),
      "rx");
  rig.engine.run();
  const double rate = static_cast<double>(bytes) / to_seconds(rig.engine.now());
  EXPECT_LT(rate, 1.0e9);   // below wire speed
  EXPECT_GT(rate, 0.2e9);   // but not absurdly slow
}

}  // namespace
}  // namespace cj::tcpsim
