// Tests for the analytical cyclo-join cost model, including validation
// against the simulator (which runs the real kernels).
#include <gtest/gtest.h>

#include "bench/harness.h"
#include "cyclo/cyclo_join.h"
#include "model/cyclo_cost.h"
#include "rel/generator.h"

namespace cj::model {
namespace {

TEST(CycloCost, SetupScalesInverselyWithRingSize) {
  const auto one = estimate(JoinKind::kHash, 12'000'000, 1);
  const auto six = estimate(JoinKind::kHash, 12'000'000, 6);
  EXPECT_NEAR(static_cast<double>(one.setup) / static_cast<double>(six.setup),
              6.0, 0.01);
}

TEST(CycloCost, HashJoinPhaseIndependentOfRingSize) {
  // Paper Equation (*): the join phase costs |R| lookups per host.
  const auto one = estimate(JoinKind::kHash, 12'000'000, 1);
  const auto six = estimate(JoinKind::kHash, 12'000'000, 6);
  EXPECT_EQ(one.join, six.join);
}

TEST(CycloCost, HashHidesNetworkMergeDoesNot) {
  // Defaults are the paper's testbed: hash probes consume well under the
  // 1.25 GB/s link; the merge join outruns it (Fig. 7 vs Fig. 11).
  const auto hash = estimate(JoinKind::kHash, 50'000'000, 6);
  const auto merge = estimate(JoinKind::kSortMerge, 50'000'000, 6);
  EXPECT_TRUE(hash.network_hidden);
  EXPECT_FALSE(merge.network_hidden);
  EXPECT_GT(merge.sync, 0);
  EXPECT_GT(merge.required_link_rate, 1.25e9);
  EXPECT_LT(hash.required_link_rate, 1.25e9);
}

TEST(CycloCost, SortMergeSetupDominatesHashSetup) {
  const auto hash = estimate(JoinKind::kHash, 10'000'000, 4);
  const auto merge = estimate(JoinKind::kSortMerge, 10'000'000, 4);
  EXPECT_GT(merge.setup, 3 * hash.setup);
  EXPECT_LT(merge.join, hash.join);
}

TEST(CycloCost, SingleCoreSerializesSetup) {
  CycloCostParams one_core;
  one_core.cores_per_host = 1;
  one_core.join_threads = 1;
  const auto serial = estimate(JoinKind::kHash, 1'000'000, 2, one_core);
  const auto parallel = estimate(JoinKind::kHash, 1'000'000, 2);
  EXPECT_GT(serial.setup, parallel.setup);
  EXPECT_GT(serial.join, parallel.join);
}

TEST(CycloCost, CrossoverNearThePapersPrediction) {
  // Paper Sec. V-E: with these kernels, sort-merge should overtake the
  // hash join at roughly 30 nodes for 1.6 GB (140 M rows) per host.
  const int crossover = sort_merge_crossover_hosts(140'000'000, 100);
  EXPECT_GT(crossover, 10);
  EXPECT_LT(crossover, 50);
}

TEST(CycloCost, FasterMergeKernelsMoveTheCrossoverDown) {
  // The paper's remark on Kim et al. [17]: with comparable sort and hash
  // kernel speeds, sort-merge wins already on small rings.
  CycloCostParams tuned;
  tuned.sort_ns_per_tuple = 90.0;  // highly tuned SIMD sort
  const int stock = sort_merge_crossover_hosts(140'000'000, 100);
  const int fast = sort_merge_crossover_hosts(140'000'000, 100, tuned);
  EXPECT_GT(fast, 0);
  EXPECT_LT(fast, stock);
}

// ---- validation against the simulator --------------------------------

class ModelVsSimulation : public ::testing::TestWithParam<int> {};

TEST_P(ModelVsSimulation, PhasePredictionsWithinTolerance) {
  const int hosts = GetParam();
  const std::uint64_t rows = 2'000'000;
  auto r = rel::generate({.rows = rows, .seed = 1}, "R", 1);
  auto s = rel::generate({.rows = rows, .seed = 2}, "S", 2);

  cyclo::CycloJoin join(bench::paper_cluster(hosts, /*scale=*/64),
                        cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport sim = join.run(r, s);
  const CycloCostEstimate predicted = estimate(JoinKind::kHash, rows, hosts);

  // Kernel costs vary with data shape, cache residency (small fragments
  // prepare superlinearly faster) and VM noise; the model should land
  // within a factor of ~2 on both phases.
  const double setup_ratio = static_cast<double>(sim.setup_wall) /
                             static_cast<double>(predicted.setup);
  const double join_ratio = static_cast<double>(sim.join_wall) /
                            static_cast<double>(predicted.join);
  EXPECT_GT(setup_ratio, 0.5) << "setup over-predicted";
  EXPECT_LT(setup_ratio, 2.0) << "setup under-predicted";
  EXPECT_GT(join_ratio, 0.5) << "join over-predicted";
  EXPECT_LT(join_ratio, 2.0) << "join under-predicted";
}

INSTANTIATE_TEST_SUITE_P(Rings, ModelVsSimulation, ::testing::Values(1, 3, 6));

}  // namespace
}  // namespace cj::model
