// Tests for the always-on flight recorder and its satellites: record
// packing, the lock-free ring (wrap-around, overflow accounting, cursor
// scans, concurrent emit — run under TSan in CI), CJT1 black-box dumps,
// journey reconstruction (synthetic windows and a real resilient sim run),
// the straggler detector, the frame hop counter, and the Prometheus text
// exposition.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cyclo/cyclo_join.h"
#include "join/local_join.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "rel/generator.h"
#include "ring/frame.h"

namespace cj::obs {
namespace {

FlightRecord make_record(SimTime ts, int host, HopKind kind,
                         std::uint16_t origin, std::uint32_t seq,
                         std::uint32_t arg_us = 0, std::uint8_t rev = 0,
                         std::uint16_t query = 0) {
  FlightRecord r;
  r.ts = ts;
  r.host = static_cast<std::int16_t>(host);
  r.kind = kind;
  r.origin = origin;
  r.seq = seq;
  r.arg_us = arg_us;
  r.revolution = rev;
  r.query = query;
  return r;
}

// ----- record packing ------------------------------------------------------

TEST(FlightRecordTest, PackRoundTripsEveryField) {
  FlightRecord r = make_record(123'456'789, 3, HopKind::kForward, 7, 42,
                               999, 2, 11);
  EXPECT_EQ(unpack_record(pack_record(r)), r);
}

TEST(FlightRecordTest, PackRoundTripFuzz) {
  std::mt19937_64 rng(20260808);
  for (int i = 0; i < 10'000; ++i) {
    FlightRecord r;
    r.ts = static_cast<SimTime>(rng() >> 1);  // non-negative
    r.seq = static_cast<std::uint32_t>(rng());
    r.origin = static_cast<std::uint16_t>(rng());
    r.query = static_cast<std::uint16_t>(rng());
    r.host = static_cast<std::int16_t>(rng());
    r.kind = static_cast<HopKind>(rng() % kNumHopKinds);
    r.revolution = static_cast<std::uint8_t>(rng());
    r.arg_us = static_cast<std::uint32_t>(rng());
    ASSERT_EQ(unpack_record(pack_record(r)), r) << "iteration " << i;
  }
}

TEST(FlightRecordTest, HopKindNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (int k = 0; k < kNumHopKinds; ++k) {
    std::string name(hop_kind_name(static_cast<HopKind>(k)));
    EXPECT_FALSE(name.empty());
    for (const std::string& prev : names) EXPECT_NE(name, prev);
    names.push_back(std::move(name));
  }
}

// ----- ring buffer ---------------------------------------------------------

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(2, FlightConfig{.slots_per_host = 100});
  EXPECT_EQ(rec.capacity_per_host(), 128u);
  EXPECT_EQ(rec.num_hosts(), 2);
}

TEST(FlightRecorderTest, SnapshotReturnsOldestFirst) {
  FlightRecorder rec(1, FlightConfig{.slots_per_host = 16});
  for (std::uint32_t i = 0; i < 10; ++i) {
    rec.emit(0, make_record(100 + i, 0, HopKind::kRecv, 1, i));
  }
  const auto window = rec.snapshot(0);
  ASSERT_EQ(window.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(window[i].seq, i);
    EXPECT_EQ(window[i].ts, 100 + static_cast<SimTime>(i));
  }
  EXPECT_EQ(rec.emitted(0), 10u);
  EXPECT_EQ(rec.dropped(0), 0u);
}

TEST(FlightRecorderTest, WrapAroundKeepsTheNewestWindow) {
  FlightRecorder rec(1, FlightConfig{.slots_per_host = 8});
  for (std::uint32_t i = 0; i < 20; ++i) {
    rec.emit(0, make_record(i, 0, HopKind::kRecv, 1, i));
  }
  const auto window = rec.snapshot(0);
  ASSERT_EQ(window.size(), 8u);
  // Survivors are exactly the last capacity emits, oldest first.
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].seq, 12 + i);
  }
  EXPECT_EQ(rec.emitted(0), 20u);
  EXPECT_EQ(rec.dropped(0), 12u);  // overwritten before any read
}

TEST(FlightRecorderTest, OutOfRangeHostIsCountedNotStored) {
  FlightRecorder rec(2, FlightConfig{.slots_per_host = 8});
  rec.emit(-1, make_record(1, -1, HopKind::kRecv, 0, 0));
  rec.emit(2, make_record(2, 2, HopKind::kRecv, 0, 0));
  rec.emit(99, make_record(3, 99, HopKind::kRecv, 0, 0));
  EXPECT_EQ(rec.total_emitted(), 0u);
  EXPECT_TRUE(rec.snapshot_all().empty());
  EXPECT_EQ(rec.dropped(0), 0u);
  EXPECT_EQ(rec.dropped(-1), 3u);  // any out-of-range index reports them
}

TEST(FlightRecorderTest, SnapshotAllMergesLanesByTimestamp) {
  FlightRecorder rec(3, FlightConfig{.slots_per_host = 16});
  rec.emit(2, make_record(30, 2, HopKind::kRecv, 1, 0));
  rec.emit(0, make_record(10, 0, HopKind::kInject, 1, 0));
  rec.emit(1, make_record(20, 1, HopKind::kRecv, 1, 0));
  const auto all = rec.snapshot_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].ts, 10);
  EXPECT_EQ(all[1].ts, 20);
  EXPECT_EQ(all[2].ts, 30);
}

TEST(FlightRecorderTest, ScanIsIncrementalPerLane) {
  FlightRecorder rec(1, FlightConfig{.slots_per_host = 16});
  std::uint64_t cursor = 0;
  std::vector<FlightRecord> out;

  rec.emit(0, make_record(1, 0, HopKind::kInject, 1, 0));
  rec.emit(0, make_record(2, 0, HopKind::kRecv, 1, 1));
  rec.scan(0, &cursor, &out);
  EXPECT_EQ(out.size(), 2u);

  rec.scan(0, &cursor, &out);  // nothing new
  EXPECT_EQ(out.size(), 2u);

  rec.emit(0, make_record(3, 0, HopKind::kForward, 1, 2));
  rec.scan(0, &cursor, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].seq, 2u);
}

// Writers on several threads, a reader snapshotting concurrently. Run
// under TSan this is the data-race check for the slot seqlock; in any mode
// it checks that every surviving record is internally consistent (a torn
// read would break the seq == arg_us - 7 invariant).
TEST(FlightRecorderTest, ConcurrentEmitAndSnapshotStaysConsistent) {
  constexpr int kWriters = 4;
  constexpr std::uint32_t kPerWriter = 50'000;
  FlightRecorder rec(kWriters, FlightConfig{.slots_per_host = 256});

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightRecord& r : rec.snapshot_all()) {
        ASSERT_EQ(r.arg_us, r.seq + 7);
        ASSERT_EQ(r.origin, static_cast<std::uint16_t>(r.host));
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint32_t i = 0; i < kPerWriter; ++i) {
        rec.emit(w, make_record(i, w, HopKind::kRecv,
                                static_cast<std::uint16_t>(w), i, i + 7));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(rec.total_emitted(), kWriters * std::uint64_t{kPerWriter});
  const auto window = rec.snapshot_all();
  EXPECT_EQ(window.size(), kWriters * rec.capacity_per_host());
  for (const FlightRecord& r : window) {
    EXPECT_EQ(r.arg_us, r.seq + 7);
  }
}

// ----- black box (CJT1) ----------------------------------------------------

TEST(BlackboxTest, ArgPackRoundTripsAndSaturates) {
  FlightRecord r = make_record(0, 2, HopKind::kProbe, 5, 1234, 999, 3, 17);
  FlightRecord out;
  unpack_blackbox_arg(pack_blackbox_arg(r), &out);
  EXPECT_EQ(out.origin, r.origin);
  EXPECT_EQ(out.query, r.query);
  EXPECT_EQ(out.revolution, r.revolution);
  EXPECT_EQ(out.arg_us, r.arg_us);

  r.arg_us = 0xFFFFFFFF;  // beyond the 24-bit dump field: saturates
  unpack_blackbox_arg(pack_blackbox_arg(r), &out);
  EXPECT_EQ(out.arg_us, 0xFFFFFFu);
}

TEST(BlackboxTest, DumpParseRoundTripFuzz) {
  std::mt19937_64 rng(7);
  std::vector<FlightRecord> window;
  for (int i = 0; i < 500; ++i) {
    FlightRecord r;
    r.ts = static_cast<SimTime>(i) * 1000;
    r.seq = static_cast<std::uint32_t>(rng() % 100'000);
    r.origin = static_cast<std::uint16_t>(rng() % 64);
    r.query = static_cast<std::uint16_t>(rng() % 8);
    r.host = static_cast<std::int16_t>(rng() % 64);
    r.kind = static_cast<HopKind>(rng() % kNumHopKinds);
    r.revolution = static_cast<std::uint8_t>(rng() % 16);
    r.arg_us = static_cast<std::uint32_t>(rng() % 0xFFFFFF);  // no saturation
    window.push_back(r);
  }

  const std::vector<std::uint8_t> bytes = blackbox_dump(window, "fuzz");
  std::vector<FlightRecord> parsed;
  std::string reason;
  ASSERT_TRUE(parse_blackbox(bytes, &parsed, &reason));
  EXPECT_EQ(reason, "fuzz");
  ASSERT_EQ(parsed.size(), window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(parsed[i], window[i]) << "record " << i;
  }
}

TEST(BlackboxTest, GarbageBytesAreRejected) {
  std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  std::vector<FlightRecord> parsed;
  EXPECT_FALSE(parse_blackbox(garbage, &parsed));
}

TEST(BlackboxTest, WriteBlackboxRoundTripsThroughAFile) {
  FlightRecorder rec(2, FlightConfig{.slots_per_host = 16});
  rec.emit(0, make_record(10, 0, HopKind::kInject, 0, 0, 4096));
  rec.emit(1, make_record(20, 1, HopKind::kRecv, 0, 0));
  rec.emit(1, make_record(25, 1, HopKind::kRetire, 0, 0, 15));

  const std::string path = ::testing::TempDir() + "/flight_blackbox.cjt";
  ASSERT_TRUE(write_blackbox(rec, path, "crash"));

  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::vector<FlightRecord> parsed;
  std::string reason;
  ASSERT_TRUE(parse_blackbox(bytes, &parsed, &reason));
  EXPECT_EQ(reason, "crash");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].kind, HopKind::kInject);
  EXPECT_EQ(parsed[2].kind, HopKind::kRetire);
  std::remove(path.c_str());
}

// ----- journey reconstruction ----------------------------------------------

// A synthetic 3-host journey: inject at 0, probe+forward on 1 and 2, retire
// at 2 (pred of 0 on a 3-ring), ack back at 0.
std::vector<FlightRecord> synthetic_journey(std::uint16_t origin,
                                            std::uint32_t seq) {
  return {
      make_record(1000, origin, HopKind::kInject, origin, seq, 4096),
      make_record(2000, 1, HopKind::kRecv, origin, seq),
      make_record(2100, 1, HopKind::kProbe, origin, seq, 80),
      make_record(2500, 1, HopKind::kForward, origin, seq, 500, 1),
      make_record(3500, 2, HopKind::kRecv, origin, seq, 0, 1),
      make_record(3600, 2, HopKind::kProbe, origin, seq, 90, 1),
      make_record(4000, 2, HopKind::kRetire, origin, seq, 500, 1),
      make_record(5000, origin, HopKind::kAck, origin, seq, 4000, 1),
  };
}

TEST(JourneyTest, ReconstructsOneJourneyEndToEnd) {
  const auto journeys = reconstruct_journeys(synthetic_journey(0, 7));
  ASSERT_EQ(journeys.size(), 1u);
  const ChunkJourney& j = journeys[0];
  EXPECT_EQ(j.origin, 0);
  EXPECT_EQ(j.seq, 7u);
  EXPECT_EQ(j.hops.size(), 8u);
  EXPECT_TRUE(j.retired);
  EXPECT_FALSE(j.adopted);
  EXPECT_EQ(j.reinjects, 0);
  EXPECT_EQ(j.inject_ts, 1000);
  EXPECT_EQ(j.retire_ts, 4000);
  EXPECT_EQ(j.duration_ns(), 3000);
  EXPECT_EQ(j.max_hops, 1);
  EXPECT_EQ(j.residency_us, 1000);  // two 500us residencies
  EXPECT_EQ(j.probe_us, 170);
}

TEST(JourneyTest, GroupsByOriginSeqAndQueryAndSkipsUnkeyed) {
  std::vector<FlightRecord> window = synthetic_journey(0, 7);
  const auto second = synthetic_journey(1, 7);  // same seq, other origin
  window.insert(window.end(), second.begin(), second.end());
  // Same (origin, seq) under a different serving wave = a third journey.
  auto waved = synthetic_journey(0, 7);
  for (auto& r : waved) r.query = 3;
  window.insert(window.end(), waved.begin(), waved.end());
  // Fault-free records carry no identity and must not be stitched.
  window.push_back(make_record(1, 0, HopKind::kRecv, kNoOrigin, 0));

  const auto journeys = reconstruct_journeys(window);
  EXPECT_EQ(journeys.size(), 3u);
}

TEST(JourneyTest, ReinjectionAndAdoptionAreCounted) {
  std::vector<FlightRecord> window = synthetic_journey(0, 7);
  window.push_back(make_record(6000, 0, HopKind::kReinject, 0, 7, 1));
  window.push_back(make_record(6500, 1, HopKind::kAdopt, 0, 7));
  const auto journeys = reconstruct_journeys(window);
  ASSERT_EQ(journeys.size(), 1u);
  EXPECT_EQ(journeys[0].reinjects, 1);
  EXPECT_TRUE(journeys[0].adopted);
}

TEST(JourneyTest, SummaryAggregatesHostsAndDurations) {
  std::vector<FlightRecord> window = synthetic_journey(0, 1);
  const auto more = synthetic_journey(0, 2);
  window.insert(window.end(), more.begin(), more.end());

  const auto journeys = reconstruct_journeys(window);
  const JourneySummary summary = summarize_journeys(journeys, 3);
  EXPECT_EQ(summary.journeys, 2u);
  EXPECT_EQ(summary.retired, 2u);
  EXPECT_EQ(summary.reinjected, 0u);
  EXPECT_EQ(summary.duration_p50_ns, 3000.0);
  EXPECT_EQ(summary.duration_mean_ns, 3000.0);
  ASSERT_EQ(summary.hosts.size(), 3u);
  // Hosts 1 and 2 each saw both chunks for 500us.
  EXPECT_EQ(summary.hosts[1].hops, 2u);
  EXPECT_EQ(summary.hosts[1].residency_us, 1000);
  EXPECT_EQ(summary.hosts[2].residency_us, 1000);

  const std::string json = journeys_json(summary, "sim");
  EXPECT_NE(json.find("\"figure\": \"journeys\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"journeys\": 2"), std::string::npos);

  const std::string flow = journey_flow_json(journeys);
  EXPECT_NE(flow.find("traceEvents"), std::string::npos);
  EXPECT_NE(flow.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(flow.find("\"ph\":\"f\""), std::string::npos);  // flow finish
}

// ----- journeys from a real resilient sim run ------------------------------

class JourneyIntegrationTest : public ::testing::Test {
 protected:
  static cyclo::RunReport run(bool resilient) {
    auto r = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 31},
                           "R", 1);
    auto s = rel::generate({.rows = 8'000, .key_domain = 2'000, .seed = 32},
                           "S", 2);
    cyclo::ClusterConfig cfg;
    cfg.num_hosts = 4;
    cfg.cores_per_host = 2;
    cfg.node.buffer_bytes = 32 * 1024;
    cfg.node.num_buffers = 4;
    if (resilient) {
      // A 1.0x slowdown injects nothing but switches the ring into
      // resilient mode: frames carry identity, journeys reconstruct.
      cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
      cfg.node.resilience.ack_timeout = 500 * kMillisecond;
    }
    cyclo::CycloJoin join(cfg,
                          cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    return join.run(r, s);
  }
};

TEST_F(JourneyIntegrationTest, ResilientRunYieldsCompleteJourneys) {
  const cyclo::RunReport report = run(/*resilient=*/true);
  ASSERT_NE(report.flight, nullptr);
  EXPECT_GT(report.flight->total_emitted(), 0u);

  const auto journeys = reconstruct_journeys(*report.flight);
  ASSERT_FALSE(journeys.empty());
  constexpr int kHosts = 4;
  for (const ChunkJourney& j : journeys) {
    EXPECT_TRUE(j.retired);
    EXPECT_FALSE(j.adopted);
    EXPECT_EQ(j.reinjects, 0);
    EXPECT_GE(j.inject_ts, 0);
    EXPECT_GE(j.duration_ns(), 0);
    // Clean single revolution: stamped by the kHosts - 2 intermediate
    // forwards between origin's successor and pred(origin).
    EXPECT_EQ(j.max_hops, kHosts - 2);
    int injects = 0, recvs = 0, forwards = 0, retires = 0, acks = 0;
    for (const FlightRecord& rec : j.hops) {
      injects += rec.kind == HopKind::kInject;
      recvs += rec.kind == HopKind::kRecv;
      forwards += rec.kind == HopKind::kForward;
      retires += rec.kind == HopKind::kRetire;
      acks += rec.kind == HopKind::kAck;
    }
    EXPECT_EQ(injects, 1);
    EXPECT_EQ(recvs, kHosts - 1);
    EXPECT_EQ(forwards, kHosts - 2);
    EXPECT_EQ(retires, 1);
    EXPECT_EQ(acks, 1);
  }

  // The metric plane agrees with the reconstruction: one revolution per
  // retired chunk, hop ceiling kHosts - 2.
  const auto& counters = report.metrics.counters;
  ASSERT_TRUE(counters.contains("revolutions_observed"));
  EXPECT_EQ(counters.at("revolutions_observed"),
            static_cast<std::int64_t>(journeys.size()));
  ASSERT_TRUE(report.metrics.gauges.contains("max_hops"));
  EXPECT_EQ(report.metrics.gauges.at("max_hops"), kHosts - 2);
  ASSERT_TRUE(counters.contains("obs.flight_records"));
  EXPECT_EQ(counters.at("obs.flight_records"),
            static_cast<std::int64_t>(report.flight->total_emitted()));

  const JourneySummary summary = summarize_journeys(journeys, kHosts);
  EXPECT_EQ(summary.retired, journeys.size());
  EXPECT_EQ(summary.reinjected, 0u);
}

TEST_F(JourneyIntegrationTest, FaultFreeRunRecordsButDoesNotStitch) {
  const cyclo::RunReport report = run(/*resilient=*/false);
  ASSERT_NE(report.flight, nullptr);
  // The emit cost is always paid...
  EXPECT_GT(report.flight->total_emitted(), 0u);
  // ...but raw chunk bytes carry no identity, so nothing stitches.
  const auto window = report.flight->snapshot_all();
  std::size_t unkeyed = 0;
  for (const FlightRecord& rec : window) unkeyed += rec.origin == kNoOrigin;
  EXPECT_EQ(unkeyed, window.size());
  EXPECT_TRUE(reconstruct_journeys(window).empty());
}

// ----- straggler detector --------------------------------------------------

TEST(StragglerDetectorTest, UniformRingNeverFlags) {
  SamplerConfig cfg;
  cfg.min_samples = 4;
  StragglerDetector det(4, cfg);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 400; ++i) {
    const int host = i % 4;
    const double jitter = static_cast<double>(rng() % 100) / 100.0;
    EXPECT_FALSE(det.observe(host, 100.0 + jitter));
  }
  EXPECT_EQ(det.total_flags(), 0u);
  EXPECT_EQ(det.hottest(), -1);
}

TEST(StragglerDetectorTest, SlowHostIsFlagged) {
  SamplerConfig cfg;
  cfg.min_samples = 4;
  StragglerDetector det(4, cfg);
  std::uint64_t flags = 0;
  for (int i = 0; i < 200; ++i) {
    for (int host = 0; host < 4; ++host) {
      const double residency = host == 2 ? 500.0 : 100.0;
      flags += det.observe(host, residency + (i % 3));
    }
  }
  EXPECT_GT(flags, 0u);
  EXPECT_EQ(det.total_flags(), flags);
  EXPECT_EQ(det.hottest(), 2);
  EXPECT_GT(det.flags(2), 0u);
  EXPECT_EQ(det.flags(0) + det.flags(1) + det.flags(3), 0u);
  EXPECT_GT(det.last_z(2), cfg.z_threshold);
  EXPECT_GT(det.mean_residency_us(2), det.mean_residency_us(0));
}

TEST(StragglerDetectorTest, NeedsMinSamplesAndPeers) {
  SamplerConfig cfg;
  cfg.min_samples = 8;
  StragglerDetector det(2, cfg);
  // Too few observations: never flags, however extreme.
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(det.observe(0, 1'000'000.0));
    EXPECT_FALSE(det.observe(1, 1.0));
  }
}

TEST(StragglerDetectorTest, ReplayFeedsMetricsFromRecorder) {
  FlightRecorder rec(3, FlightConfig{.slots_per_host = 1024});
  SimTime ts = 0;
  for (std::uint32_t i = 0; i < 60; ++i) {
    for (int host = 0; host < 3; ++host) {
      const std::uint32_t residency = host == 1 ? 900 : 100;
      rec.emit(host, make_record(ts += 10, host, HopKind::kForward, 0,
                                 i * 3 + static_cast<std::uint32_t>(host),
                                 residency + (i % 5)));
    }
  }
  SamplerConfig cfg;
  cfg.min_samples = 4;
  StragglerDetector det(3, cfg);
  MetricsRegistry metrics;
  const std::uint64_t flags = replay_stragglers(rec, det, &metrics, nullptr);
  EXPECT_GT(flags, 0u);
  EXPECT_EQ(det.hottest(), 1);
  const MetricsSnapshot snap = metrics.snapshot();
  ASSERT_TRUE(snap.counters.contains("obs.straggler_flags"));
  EXPECT_EQ(snap.counters.at("obs.straggler_flags"),
            static_cast<std::int64_t>(flags));
  ASSERT_TRUE(snap.counters.contains("host1.straggler_flags"));
  EXPECT_EQ(snap.counters.at("host1.straggler_flags"),
            static_cast<std::int64_t>(det.flags(1)));
}

// ----- frame hop counter ---------------------------------------------------

TEST(FrameHopTest, StampHopIncrementsAndResealsChecksum) {
  std::vector<std::byte> payload(64, std::byte{0x5A});
  const ring::FrameHeader h =
      ring::make_frame(ring::FrameKind::kData, /*origin=*/2, /*seq=*/9, payload);
  std::vector<std::byte> message(ring::kFrameBytes + payload.size());
  ring::encode_frame(h, message.data());
  std::copy(payload.begin(), payload.end(),
            message.begin() + ring::kFrameBytes);

  EXPECT_EQ(ring::stamp_hop(message), 1);
  EXPECT_EQ(ring::stamp_hop(message), 2);

  ring::FrameHeader decoded;
  ASSERT_TRUE(ring::decode_frame(message, &decoded));  // checksum re-sealed
  EXPECT_EQ(decoded.reserved[0], 2);
  EXPECT_EQ(decoded.origin, 2);
  EXPECT_EQ(decoded.seq, 9u);
}

TEST(FrameHopTest, HopCounterSaturatesAt255) {
  std::vector<std::byte> payload(8, std::byte{1});
  const ring::FrameHeader h =
      ring::make_frame(ring::FrameKind::kData, 0, 0, payload);
  std::vector<std::byte> message(ring::kFrameBytes + payload.size());
  ring::encode_frame(h, message.data());
  std::copy(payload.begin(), payload.end(),
            message.begin() + ring::kFrameBytes);

  for (int i = 0; i < 300; ++i) ring::stamp_hop(message);
  ring::FrameHeader decoded;
  ASSERT_TRUE(ring::decode_frame(message, &decoded));
  EXPECT_EQ(decoded.reserved[0], 255);
}

// ----- prometheus exposition -----------------------------------------------

TEST(PrometheusTest, NamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(prometheus_name("ring.bytes_sent"), "cj_ring_bytes_sent");
  EXPECT_EQ(prometheus_name("host0.straggler_z"), "cj_host0_straggler_z");
  EXPECT_EQ(prometheus_name("a-b c", "x"), "x_a_b_c");
}

TEST(PrometheusTest, RendersCountersGaugesAndSummaries) {
  MetricsRegistry metrics;
  metrics.add_counter("obs.flight_records", 42);
  metrics.set_gauge("max_hops", 2.0);
  for (int i = 1; i <= 100; ++i) metrics.record("probe_ns", i * 1000);

  const std::string page = prometheus_text(metrics.snapshot());
  EXPECT_NE(page.find("# TYPE cj_obs_flight_records counter"),
            std::string::npos);
  EXPECT_NE(page.find("cj_obs_flight_records 42"), std::string::npos);
  EXPECT_NE(page.find("# TYPE cj_max_hops gauge"), std::string::npos);
  EXPECT_NE(page.find("# TYPE cj_probe_ns summary"), std::string::npos);
  EXPECT_NE(page.find("cj_probe_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(page.find("cj_probe_ns_count 100"), std::string::npos);
}

}  // namespace
}  // namespace cj::obs
