// Cross-module integration tests: transport equivalence, phase-timing
// invariants, zero-copy registration accounting, and multi-join pipelines
// built from materialized distributed results.
#include <gtest/gtest.h>

#include "cyclo/cyclo_join.h"
#include "join/local_join.h"
#include "join/nested_loops.h"
#include "rel/generator.h"

namespace cj::cyclo {
namespace {

ClusterConfig cluster_of(int hosts, Transport transport = Transport::kRdma) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.node.buffer_bytes = 64 * 1024;
  cfg.node.num_buffers = 8;
  cfg.transport = transport;
  return cfg;
}

TEST(TransportEquivalence, RdmaAndTcpComputeIdenticalJoins) {
  auto r = rel::generate({.rows = 60'000, .key_domain = 20'000, .seed = 1}, "R", 1);
  auto s = rel::generate({.rows = 60'000, .key_domain = 20'000, .seed = 2}, "S", 2);

  for (auto algorithm : {Algorithm::kHashJoin, Algorithm::kSortMergeJoin}) {
    CycloJoin rdma(cluster_of(5, Transport::kRdma), JoinSpec{.algorithm = algorithm});
    CycloJoin tcp(cluster_of(5, Transport::kTcp), JoinSpec{.algorithm = algorithm});
    const RunReport a = rdma.run(r, s);
    const RunReport b = tcp.run(r, s);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_GT(a.matches, 0u);
  }
}

TEST(PhaseTimings, SetupShrinksWithRingSize) {
  auto r = rel::generate({.rows = 400'000, .key_domain = 400'000, .seed = 3}, "R", 1);
  auto s = rel::generate({.rows = 400'000, .key_domain = 400'000, .seed = 4}, "S", 2);

  CycloJoin one(cluster_of(1), JoinSpec{.algorithm = Algorithm::kHashJoin});
  CycloJoin six(cluster_of(6), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport rep1 = one.run(r, s);
  const RunReport rep6 = six.run(r, s);
  EXPECT_EQ(rep1.matches, rep6.matches);
  // Paper Fig. 7: ~6x; generous bounds absorb measurement noise.
  EXPECT_LT(rep6.setup_wall, rep1.setup_wall / 2);
}

TEST(PhaseTimings, SortMergeSetupDominatesHashSetup) {
  auto r = rel::generate({.rows = 400'000, .key_domain = 400'000, .seed = 5}, "R", 1);
  auto s = rel::generate({.rows = 400'000, .key_domain = 400'000, .seed = 6}, "S", 2);

  CycloJoin hash(cluster_of(4), JoinSpec{.algorithm = Algorithm::kHashJoin});
  CycloJoin merge(cluster_of(4), JoinSpec{.algorithm = Algorithm::kSortMergeJoin});
  const RunReport h = hash.run(r, s);
  const RunReport m = merge.run(r, s);
  EXPECT_EQ(h.matches, m.matches);
  EXPECT_EQ(h.checksum, m.checksum);
  // Paper Sec. V-E: sorting costs significantly more than hashing.
  EXPECT_GT(m.setup_wall, h.setup_wall);
}

TEST(PhaseTimings, TcpIsSlowerThanRdma) {
  auto r = rel::generate({.rows = 500'000, .key_domain = 500'000, .seed = 7}, "R", 1);
  auto s = rel::generate({.rows = 500'000, .key_domain = 500'000, .seed = 8}, "S", 2);

  ClusterConfig tcp_cfg = cluster_of(4, Transport::kTcp);
  tcp_cfg.context_switch_cost = 12 * kMicrosecond;
  CycloJoin rdma(cluster_of(4, Transport::kRdma),
                 JoinSpec{.algorithm = Algorithm::kHashJoin});
  CycloJoin tcp(tcp_cfg, JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport a = rdma.run(r, s);
  const RunReport b = tcp.run(r, s);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(b.join_wall, a.join_wall);
}

TEST(CpuAccounting, RdmaJoinLoadTracksThreadCount) {
  auto r = rel::generate({.rows = 600'000, .key_domain = 600'000, .seed = 9}, "R", 1);
  auto s = rel::generate({.rows = 600'000, .key_domain = 600'000, .seed = 10}, "S", 2);

  CycloJoin one_thread(cluster_of(4),
                       JoinSpec{.algorithm = Algorithm::kHashJoin, .join_threads = 1});
  CycloJoin four_threads(cluster_of(4),
                         JoinSpec{.algorithm = Algorithm::kHashJoin, .join_threads = 4});
  const RunReport rep1 = one_thread.run(r, s);
  const RunReport rep4 = four_threads.run(r, s);
  // One join thread on four cores: ~25% load (paper Table I).
  EXPECT_NEAR(rep1.cpu_load_join, 0.25, 0.08);
  EXPECT_GT(rep4.cpu_load_join, rep1.cpu_load_join * 2.0);
  // Four threads also finish faster in wall time.
  EXPECT_LT(rep4.join_wall, rep1.join_wall);
}

TEST(Transport, WireCarriesEachChunkAcrossAllButOneHop) {
  auto r = rel::generate({.rows = 100'000, .key_domain = 100'000, .seed = 11}, "R", 1);
  auto s = rel::generate({.rows = 100'000, .key_domain = 100'000, .seed = 12}, "S", 2);
  const int hosts = 4;
  CycloJoin cyclo(cluster_of(hosts), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport rep = cyclo.run(r, s);
  // Every payload byte of the prepared rotating relation crosses hosts-1
  // links. Prepared chunks carry headers/directories, so allow ~5% slack
  // above the raw tuple volume.
  const double raw = static_cast<double>(r.bytes()) * (hosts - 1);
  EXPECT_GT(static_cast<double>(rep.bytes_on_wire), raw);
  EXPECT_LT(static_cast<double>(rep.bytes_on_wire), raw * 1.05);
}

TEST(QueryPipeline, TernaryJoinViaTwoCycloRuns) {
  // (R ⋈ S) ⋈ T — the paper sketches exactly this composition (Sec. IV-A):
  // the first join's distributed result feeds the second run.
  auto r = rel::generate({.rows = 3'000, .key_domain = 800, .seed = 13}, "R", 1);
  auto s = rel::generate({.rows = 3'000, .key_domain = 800, .seed = 14}, "S", 2);
  auto t = rel::generate({.rows = 3'000, .key_domain = 800, .seed = 15}, "T", 3);

  JoinSpec first_spec{.algorithm = Algorithm::kHashJoin};
  first_spec.materialize = true;
  CycloJoin first(cluster_of(3), first_spec);
  const RunReport rs = first.run(r, s);

  // Rebuild a relation from the distributed intermediate: key stays the
  // join key, payload keeps R's payload (projection).
  rel::Relation intermediate("RS");
  for (const auto& host_result : rs.host_results) {
    for (const auto& out : host_result.output()) {
      intermediate.push_back(rel::Tuple{out.key, out.r_payload});
    }
  }
  std::uint64_t fragment_rows = 0;
  for (const auto& frag : rs.output_fragments()) fragment_rows += frag.rows;
  EXPECT_EQ(fragment_rows, intermediate.rows());

  CycloJoin second(cluster_of(3), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport rst = second.run(intermediate, t);

  // Oracle: nested loops of the same composition.
  join::JoinResult oracle_rs(true);
  join::nested_loops_equi_join(r.tuples(), s.tuples(), oracle_rs);
  rel::Relation oracle_mid("mid");
  for (const auto& out : oracle_rs.output()) {
    oracle_mid.push_back(rel::Tuple{out.key, out.r_payload});
  }
  join::JoinResult oracle_rst;
  join::nested_loops_equi_join(oracle_mid.tuples(), t.tuples(), oracle_rst);

  EXPECT_EQ(rst.matches, oracle_rst.matches());
}

TEST(Scheduling, JoinThreadsNeverExceedConfiguredLimit) {
  // With join_threads=2 on 4-core hosts, join-tagged busy time can be at
  // most 2 cores' worth of the join-phase window.
  auto r = rel::generate({.rows = 300'000, .key_domain = 300'000, .seed = 16}, "R", 1);
  auto s = rel::generate({.rows = 300'000, .key_domain = 300'000, .seed = 17}, "S", 2);
  CycloJoin cyclo(cluster_of(3),
                  JoinSpec{.algorithm = Algorithm::kHashJoin, .join_threads = 2});
  const RunReport rep = cyclo.run(r, s);
  for (const auto& host : rep.hosts) {
    const auto it = host.busy_by_tag.find("join");
    ASSERT_NE(it, host.busy_by_tag.end());
    EXPECT_LE(static_cast<double>(it->second),
              static_cast<double>(host.join_phase) * 2.0 * 1.05);
  }
}

TEST(Robustness, EmptyRelationsProduceEmptyJoin) {
  rel::Relation r("R");
  rel::Relation s("S");
  for (std::uint32_t i = 0; i < 100; ++i) r.push_back({i, i});
  CycloJoin cyclo(cluster_of(3), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport rep = cyclo.run(r, s);
  EXPECT_EQ(rep.matches, 0u);
}

TEST(Robustness, MoreHostsThanRows) {
  auto r = rel::generate({.rows = 4, .key_domain = 2, .seed = 18}, "R", 1);
  auto s = rel::generate({.rows = 4, .key_domain = 2, .seed = 19}, "S", 2);
  join::JoinResult oracle;
  join::nested_loops_equi_join(r.tuples(), s.tuples(), oracle);
  CycloJoin cyclo(cluster_of(6), JoinSpec{.algorithm = Algorithm::kHashJoin});
  const RunReport rep = cyclo.run(r, s);
  EXPECT_EQ(rep.matches, oracle.matches());
  EXPECT_EQ(rep.checksum, oracle.checksum());
}

}  // namespace
}  // namespace cj::cyclo
